"""Energy comparison across run-time systems (extension experiment).

Not a paper figure: the paper evaluates performance only.  This experiment
applies the first-order energy model to every policy on one budget and
reports total energy and energy-delay product -- confirming that the
performance wins translate into energy wins (shorter runtime means less
core activity and less leakage, and the added reconfiguration energy stays
minor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.baselines import Morpheus4SPolicy, OfflineOptimalPolicy, RisppLikePolicy
from repro.baselines.riscmode import RiscModePolicy
from repro.core.mrts import MRTS
from repro.fabric.energy import EnergyBreakdown, estimate_energy
from repro.fabric.resources import ResourceBudget
from repro.sim.simulator import Simulator
from repro.util.tables import render_table
from repro.workloads.h264 import h264_application, h264_library

POLICIES: List[Tuple[str, Callable]] = [
    ("risc", RiscModePolicy),
    ("rispp", RisppLikePolicy),
    ("morpheus4s", Morpheus4SPolicy),
    ("offline-optimal", OfflineOptimalPolicy),
    ("mrts", MRTS),
]


@dataclass
class EnergyResult:
    budget_label: str
    breakdowns: Dict[str, EnergyBreakdown]

    def total_mj(self, policy: str) -> float:
        return self.breakdowns[policy].total_mj

    def saving_vs_risc(self, policy: str) -> float:
        """Fraction of the RISC-mode energy saved by ``policy``."""
        risc = self.total_mj("risc")
        return 1.0 - self.total_mj(policy) / risc

    def render(self) -> str:
        rows = []
        for name, _ in POLICIES:
            b = self.breakdowns[name]
            rows.append(
                [
                    name,
                    round(b.total_mj, 2),
                    round(b.reconfig_mj, 3),
                    round(b.energy_delay_product, 1),
                    f"{100 * self.saving_vs_risc(name):.1f}%",
                ]
            )
        return render_table(
            ["policy", "total (mJ)", "reconfig (mJ)", "EDP (mJ*Mcyc)", "saving vs RISC"],
            rows,
            title=f"Energy at fabric combination {self.budget_label}",
        )


def run_energy(
    frames: int = 12,
    seed: int = 7,
    n_cg: int = 2,
    n_prc: int = 2,
) -> EnergyResult:
    """Estimate per-policy energy on the H.264 encoder."""
    application = h264_application(frames=frames, seed=seed)
    budget = ResourceBudget(n_prcs=n_prc, n_cg_fabrics=n_cg)
    library = h264_library(budget)
    breakdowns = {}
    for name, factory in POLICIES:
        result = Simulator(
            application, library, budget, factory(), collect_trace=True
        ).run()
        breakdowns[name] = estimate_energy(result)
    return EnergyResult(budget_label=budget.label, breakdowns=breakdowns)


__all__ = ["run_energy", "EnergyResult"]
