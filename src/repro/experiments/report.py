"""One-shot markdown dossier of every reproduced figure.

``write_markdown_report`` runs the full experiment suite and writes a
self-contained markdown document: per figure, the paper's claim, the
measured rendering, and the wall-clock cost of the run.  The repository's
EXPERIMENTS.md is the curated version of this output; the generated dossier
is for re-validation after changes (``python -m repro report``).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, List, Tuple, Union

from repro.experiments import (
    run_ablations,
    run_contention,
    run_energy,
    run_fig1,
    run_fig2,
    run_fig5,
    run_fig8,
    run_fig9,
    run_fig10,
    run_granularity,
    run_multitask,
    run_overhead,
    run_search_space,
)

#: (title, paper claim, runner factory) per section.
SECTIONS: List[Tuple[str, str, Callable[[bool], object]]] = [
    (
        "Fig. 1 — pif of the case-study ISEs",
        "Three dominance regions: the CG ISE for few executions, the "
        "multi-grained ISE in the middle, the FG ISE once its millisecond "
        "reconfiguration amortises.",
        lambda fast: run_fig1(points=20 if fast else 50),
    ),
    (
        "Fig. 2 — execution behaviour over frames",
        "The per-frame execution count of the deblocking filter varies so "
        "much that the best ISE changes between iterations.",
        lambda fast: run_fig2(frames=16),
    ),
    (
        "Fig. 5 — execution behaviour of an ISE (measured)",
        "Executions migrate from RISC/monoCG through intermediate ISEs to "
        "the fully reconfigured ISE as data paths complete.",
        lambda fast: run_fig5(frames=4),
    ),
    (
        "Fig. 8 — comparison with the state of the art",
        "mRTS beats the RISPP-like, offline-optimal and Morpheus/4S-like "
        "systems on average, with parity in the predicted corner cases.",
        lambda fast: run_fig8(frames=6 if fast else 16),
    ),
    (
        "Fig. 9 — heuristic vs. optimal selection",
        "The O(N*M) heuristic performs close to the exhaustive-equivalent "
        "optimum; worst cases stay around 11 %.",
        lambda fast: run_fig9(frames=6 if fast else 16, max_prc=4 if fast else 6),
    ),
    (
        "Fig. 10 — speedup over RISC mode",
        "FG-only combinations reach ~2x, multi-grained combinations ~5x; "
        "(1 CG, 1 PRC) beats 3 PRCs or 3 CG fabrics alone.",
        lambda fast: run_fig10(frames=6 if fast else 16),
    ),
    (
        "Section 5.4 — run-time system overhead",
        "Less than 3000 cycles per kernel selection, a small fraction of a "
        "functional block, mostly hidden behind reconfigurations.",
        lambda fast: run_overhead(frames=6 if fast else 16),
    ),
    (
        "Section 4.1 — search-space size",
        "The joint selection space explodes combinatorially; the heuristic "
        "needs orders of magnitude fewer profit evaluations.",
        lambda fast: run_search_space(),
    ),
    (
        "Ablations — what each mRTS ingredient buys",
        "Intermediate ISEs, the monoCG-Extension, the MPU and overhead "
        "hiding all contribute.",
        lambda fast: run_ablations(frames=6 if fast else 16),
    ),
    (
        "Fabric contention — run-time variation (b)",
        "Run-time systems degrade gracefully when another task claims "
        "fabric; compile-time selections collapse.",
        lambda fast: run_contention(frames=6 if fast else 12),
    ),
    (
        "Selection granularity — the critique of [11]",
        "Functional-block-level selection beats task-level management.",
        lambda fast: run_granularity(frames=6 if fast else 12),
    ),
    (
        "Energy (extension)",
        "Acceleration saves energy twice over: fewer active core cycles and "
        "less leakage time, for minor reconfiguration energy.",
        lambda fast: run_energy(frames=6 if fast else 12),
    ),
    (
        "Multi-task sharing — two applications, one fabric",
        "Two mRTS instances co-exist on one fabric; interference shrinks "
        "with the budget.",
        lambda fast: run_multitask(frames=4 if fast else 6, images=4 if fast else 6),
    ),
]


def _stored_factories(store: str):
    """Figure factories routed through a columnar result store.

    The fig8/9/10 grids stream through ``<store>`` and are rebuilt from
    the committed shards (``repro.results.kpi``); every rebuilt result
    renders byte-identically to its in-memory counterpart, so a stored
    dossier diffs clean against a plain one.  Keys are the section-title
    prefixes of the grid figures.
    """
    from repro.results import (
        run_fig8_stored,
        run_fig9_stored,
        run_fig10_stored,
    )

    return {
        "Fig. 8": lambda fast: run_fig8_stored(
            store, frames=6 if fast else 16
        )[0],
        "Fig. 9": lambda fast: run_fig9_stored(
            store, frames=6 if fast else 16, max_prc=4 if fast else 6
        )[0],
        "Fig. 10": lambda fast: run_fig10_stored(
            store, frames=6 if fast else 16
        )[0],
    }


def write_markdown_report(
    path: Union[str, Path], fast: bool = False, store: Union[str, None] = None
) -> Path:
    """Run every experiment and write the markdown dossier to ``path``.

    With ``store`` set, the grid figures (8/9/10) stream their sweeps
    through the columnar result store at that directory and are rebuilt
    from the stored shards instead of in-memory records — identical
    output, bounded sweep memory, and the sweeps stay on disk for
    ``repro results`` afterwards.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    stored = _stored_factories(store) if store is not None else {}
    lines = [
        "# mRTS reproduction — generated experiment dossier",
        "",
        f"Mode: {'fast (reduced sizes)' if fast else 'full'}.  "
        "Regenerate with `python -m repro report`.",
        "",
    ]
    total_start = time.perf_counter()
    for title, claim, factory in SECTIONS:
        for prefix in stored:
            if title.startswith(prefix + " "):
                factory = stored[prefix]
                break
        start = time.perf_counter()
        result = factory(fast)
        elapsed = time.perf_counter() - start
        lines += [
            f"## {title}",
            "",
            f"*Paper claim:* {claim}",
            "",
            "```text",
            result.render(),
            "```",
            "",
            f"_({elapsed:.1f}s)_",
            "",
        ]
    lines.append(f"Total: {time.perf_counter() - total_start:.0f}s.")
    path.write_text("\n".join(lines))
    return path


__all__ = ["write_markdown_report", "SECTIONS"]
