"""Export experiment results to CSV / JSON for downstream plotting.

Every experiment's result object renders as an ASCII table for humans;
this module extracts the same data as ``(headers, rows)`` records and
writes them to files, so the paper's figures can be re-plotted with any
tool without re-running the simulations.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.experiments.ablations import AblationResult
from repro.experiments.contention import ContentionResult, POLICIES
from repro.experiments.fig1_pif import Fig1Result
from repro.experiments.fig2_executions import Fig2Result
from repro.experiments.fig5_timeline import Fig5Result
from repro.experiments.fig8_comparison import APPROACHES, Fig8Result
from repro.experiments.fig9_optimality import Fig9Result
from repro.experiments.fig10_speedup import Fig10Result, classify
from repro.experiments.granularity import GranularityResult
from repro.experiments.multitask import MultiTaskExperimentResult
from repro.experiments.energy import EnergyResult
from repro.experiments.sweep import SweepResult
from repro.experiments.sensitivity import SensitivityResult
from repro.experiments.overhead import OverheadResult
from repro.experiments.search_space import SearchSpaceResult
from repro.util.validation import ReproError

Records = Tuple[List[str], List[List[object]]]


def figure_records(result: object) -> Records:
    """``(headers, rows)`` of the primary data series of ``result``."""
    if isinstance(result, Fig1Result):
        headers = ["executions"] + list(result.curves) + ["best"]
        rows = [
            [e] + [result.curves[name][i] for name in result.curves] + [result.best[i]]
            for i, e in enumerate(result.executions)
        ]
        return headers, rows
    if isinstance(result, Fig2Result):
        return (
            ["frame", "executions", "best_ise"],
            [
                [i + 1, e, b]
                for i, (e, b) in enumerate(
                    zip(result.executions_per_frame, result.best_ise_per_frame)
                )
            ],
        )
    if isinstance(result, Fig5Result):
        return (
            ["mode", "level", "executions", "latency", "start", "ise"],
            [
                [p.mode, p.level, p.executions, p.latency, p.start, p.ise_name or ""]
                for p in result.timeline.phases
            ],
        )
    if isinstance(result, Fig8Result):
        headers = ["combo", "risc"] + list(APPROACHES)
        rows = [
            [b.label, result.risc_cycles[i]]
            + [result.cycles[name][i] for name in APPROACHES]
            for i, b in enumerate(result.budgets)
        ]
        return headers, rows
    if isinstance(result, Fig9Result):
        diffs = result.percent_difference()
        return (
            ["combo", "heuristic_cycles", "optimal_cycles", "diff_percent"],
            [
                [b.label, h, o, d]
                for b, h, o, d in zip(
                    result.budgets,
                    result.heuristic_cycles,
                    result.optimal_cycles,
                    diffs,
                )
            ],
        )
    if isinstance(result, Fig10Result):
        return (
            ["combo", "group", "speedup"],
            [
                [b.label, classify(b), s]
                for b, s in zip(result.budgets, result.speedups)
            ],
        )
    if isinstance(result, OverheadResult):
        return (
            ["metric", "value"],
            [
                ["cycles_per_kernel_selection", result.cycles_per_kernel],
                ["cycles_per_block_selection", result.cycles_per_selection],
                ["fraction_of_block_time", result.fraction_of_block_time],
                ["hidden_fraction", result.hidden_fraction],
            ],
        )
    if isinstance(result, SearchSpaceResult):
        return (
            ["kernel", "candidates"],
            [[k, result.candidates_per_kernel[k]] for k in result.kernels]
            + [["<combinations>", result.combinations],
               ["<heuristic_evaluations>", result.heuristic_evaluations]],
        )
    if isinstance(result, AblationResult):
        return (
            ["variant", "cycles", "slowdown"],
            [
                [name, result.cycles[name], result.slowdown(name)]
                for name in result.cycles
            ],
        )
    if isinstance(result, ContentionResult):
        return (
            ["policy", "baseline_cycles", "contended_cycles", "degradation"],
            [
                [
                    name,
                    result.baseline_cycles[name],
                    result.contended_cycles[name],
                    result.degradation(name),
                ]
                for name, _ in POLICIES
            ],
        )
    if isinstance(result, MultiTaskExperimentResult):
        rows = []
        for label, tasks in result.cells.items():
            for task, (alone, shared) in tasks.items():
                rows.append([label, task, alone, shared, shared / alone])
        return ["combo", "task", "alone_cycles", "shared_cycles", "interference"], rows
    if isinstance(result, EnergyResult):
        rows = []
        for name, b in result.breakdowns.items():
            rows.append([
                name, b.total_mj, b.reconfig_mj, b.static_mj,
                b.energy_delay_product,
            ])
        return ["policy", "total_mj", "reconfig_mj", "static_mj", "edp"], rows
    if isinstance(result, SweepResult):
        return result.records()
    if isinstance(result, SensitivityResult):
        rows = [
            [name, s33, s11, s30, s03, result.mg_beats_single(name)]
            for name, (s33, s11, s30, s03) in result.cells.items()
        ]
        return ["variant", "s33", "s11", "s30", "s03", "mg_wins"], rows
    if isinstance(result, GranularityResult):
        rows: List[List[object]] = [["mrts", 0, result.mrts_cycles]]
        for period, cycles in sorted(result.task_level_cycles.items()):
            rows.append(["task-level", period, cycles])
        return ["policy", "period_blocks", "cycles"], rows
    raise ReproError(f"no exporter for result type {type(result).__name__}")


def export_csv(result: object, path: Union[str, Path]) -> Path:
    """Write the primary data of ``result`` as CSV; returns the path."""
    headers, rows = figure_records(result)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def export_json(result: object, path: Union[str, Path]) -> Path:
    """Write the primary data of ``result`` as JSON records; returns the path."""
    headers, rows = figure_records(result)
    records = [dict(zip(headers, row)) for row in rows]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(records, handle, indent=2, default=str)
    return path


__all__ = ["figure_records", "export_csv", "export_json"]
