"""Fig. 1: performance improvement factor of the three case-study ISEs.

Sweeps the number of kernel executions and evaluates Eq. 1 for ISE-1
(pure FG), ISE-2 (pure CG) and ISE-3 (multi-grained) of the H.264
deblocking filter.  The paper's qualitative result: three dominance
regions -- ISE-2 wins for few executions (its reconfiguration is
microseconds), ISE-3 in the middle, ISE-1 for many executions (its
millisecond reconfiguration amortises, and it is the fastest per
execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.profit import pif
from repro.util.tables import render_series
from repro.workloads.h264.deblocking import deblocking_case_study


@dataclass
class Fig1Result:
    """pif curves over the execution sweep plus the dominance regions."""

    executions: List[int]
    curves: Dict[str, List[float]]   #: ISE name -> pif per sweep point
    best: List[str]                  #: winning ISE per sweep point
    boundaries: List[Tuple[str, str, int]]  #: (from, to, executions) switches

    def dominance_region(self, ise_name: str) -> Optional[Tuple[int, int]]:
        """First/last sweep value at which ``ise_name`` has the highest pif."""
        points = [e for e, b in zip(self.executions, self.best) if b == ise_name]
        if not points:
            return None
        return points[0], points[-1]

    def render(self) -> str:
        from repro.util.plot import line_chart

        lines = [
            line_chart(
                self.curves,
                x_values=self.executions,
                title="Fig. 1: pif of the deblocking-filter ISEs vs. number of executions",
            ),
            render_series(
                self.curves,
                x_label="executions",
                x_values=self.executions,
            ),
        ]
        for a, b, e in self.boundaries:
            lines.append(f"dominance switches from {a} to {b} at ~{e} executions")
        return "\n".join(lines)


def run_fig1(
    max_executions: int = 10_000,
    points: int = 50,
) -> Fig1Result:
    """Reproduce Fig. 1 with ``points`` sweep values up to ``max_executions``."""
    _, ises = deblocking_case_study()
    step = max(1, max_executions // points)
    executions = list(range(step, max_executions + 1, step))
    curves: Dict[str, List[float]] = {name: [] for name in ises}
    best: List[str] = []
    for e in executions:
        for name, ise in ises.items():
            curves[name].append(
                pif(
                    sw_time=ise.latencies[0],
                    hw_time=ise.full_latency,
                    reconfiguration_latency=ise.total_reconfig_cycles,
                    executions=e,
                )
            )
        best.append(max(ises, key=lambda name: curves[name][-1]))
    boundaries = [
        (a, b, executions[i + 1])
        for i, (a, b) in enumerate(zip(best, best[1:]))
        if a != b
    ]
    return Fig1Result(
        executions=executions, curves=curves, best=best, boundaries=boundaries
    )


__all__ = ["run_fig1", "Fig1Result"]
