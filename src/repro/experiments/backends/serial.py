"""The in-process backend: one batch, this process, no IPC.

The reference implementation every other backend must be byte-identical
to -- and the signature anchor of the ``backend-run-signature`` lint
invariant.
"""

from __future__ import annotations

from repro.experiments import engine as engine_module
from repro.experiments.backends.base import ExecutorBackend, merge_counters


class SerialBackend(ExecutorBackend):
    """Runs every cell in the calling process, in input order."""

    name = "serial"

    def run(self, cells):
        records, built = engine_module.execute_batch(list(cells))
        merge_counters(self.counters, built)
        return records


__all__ = ["SerialBackend"]
