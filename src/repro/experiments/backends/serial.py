"""The in-process backend: one batch, this process, no IPC.

The reference implementation every other backend must be byte-identical
to -- and the signature anchor of the ``backend-run-signature`` lint
invariant.
"""

from __future__ import annotations

from repro.experiments import engine as engine_module
from repro.experiments.backends.base import ExecutorBackend, merge_counters


class SerialBackend(ExecutorBackend):
    """Runs every cell in the calling process, in input order."""

    name = "serial"

    def run(self, cells, on_record=None):
        cells = list(cells)
        if on_record is None:
            records, built = engine_module.execute_batch(cells)
            merge_counters(self.counters, built)
            return records
        # Streaming: execute in bounded chunks so the construction memos
        # still amortise within a chunk while no full record list exists.
        chunk = self.chunk_size if self.chunk_size else 32
        for lo in range(0, len(cells), chunk):
            records, built = engine_module.execute_batch(cells[lo:lo + chunk])
            merge_counters(self.counters, built)
            for offset, record in enumerate(records):
                on_record(lo + offset, record)
        return None


__all__ = ["SerialBackend"]
