"""Registered executor backends for :class:`~repro.experiments.engine
.SweepEngine`.

Four ship with the repo -- all byte-identical by construction (every one
funnels cells through ``execute_cell``):

* ``serial`` -- the calling process, in input order (the reference).
* ``pool`` -- batches over a local ``ProcessPoolExecutor``.
* ``distributed`` -- a TCP coordinator + socket worker processes that can
  span hosts (length-prefixed JSON frames, fingerprint handshake,
  retry-on-worker-death).
* ``service`` -- the sweep becomes one job on the always-on ``repro
  serve`` daemon (shared fleet, fair scheduling, network-served record
  store); without ``--coordinator`` it self-hosts an ephemeral daemon.

``docs/sweeps.md`` has the selection matrix.  Register additional
backends with :func:`register_backend`; their ``run(cells)`` signature
must prefix-extend the serial backend's (lint-enforced).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.experiments.backends.base import ExecutorBackend, plan_batches
from repro.experiments.backends.distributed import DistributedBackend
from repro.experiments.backends.pool import PoolBackend
from repro.experiments.backends.serial import SerialBackend
from repro.experiments.backends.service import ServiceBackend
from repro.util.validation import ReproError

#: Every registered backend, by the name used in the engine and the CLI.
BACKENDS: Dict[str, Callable[..., ExecutorBackend]] = {}


def register_backend(name: str, factory: Callable[..., ExecutorBackend]) -> None:
    """Register an executor backend factory.

    The factory is called with the engine's fan-out knobs
    (``jobs``/``chunk_size``/``workers``/``coordinator``) and must return
    an :class:`ExecutorBackend`.
    """
    BACKENDS[name] = factory


def backend_names() -> List[str]:
    """Sorted names of every registered backend (CLI choices)."""
    return sorted(BACKENDS)


def resolve_backend(
    name: Optional[str] = None,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
    coordinator: Optional[str] = None,
) -> ExecutorBackend:
    """Instantiate a backend by name.

    ``None`` auto-selects: ``pool`` when ``jobs > 1``, else ``serial`` --
    exactly the engine's pre-backend behaviour.
    """
    if name is None:
        name = "pool" if jobs > 1 else "serial"
    if name not in BACKENDS:
        raise ReproError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        )
    return BACKENDS[name](
        jobs=jobs, chunk_size=chunk_size, workers=workers,
        coordinator=coordinator,
    )


register_backend("serial", SerialBackend)
register_backend("pool", PoolBackend)
register_backend("distributed", DistributedBackend)
register_backend("service", ServiceBackend)


__all__ = [
    "BACKENDS",
    "DistributedBackend",
    "ExecutorBackend",
    "PoolBackend",
    "SerialBackend",
    "ServiceBackend",
    "backend_names",
    "plan_batches",
    "register_backend",
    "resolve_backend",
]
