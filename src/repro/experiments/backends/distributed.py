"""The distributed backend: a TCP coordinator driving socket workers.

The coordinator binds a listening socket (loopback + ephemeral port by
default, any ``host:port`` for multi-host runs), spawns N local worker
processes, and accepts any additional workers that connect from elsewhere
(``python -m repro.experiments.backends.worker --coordinator host:port``).

Wire protocol -- length-prefixed JSON frames (a 4-byte big-endian length
followed by that many bytes of UTF-8 JSON):

* worker -> coordinator: ``{"type": "hello", "schema": ..., "protocol": ...}``
* coordinator -> worker: ``{"type": "welcome", "schema": ...,
  "fingerprints": [...]}`` -- the handshake carries every library
  fingerprint of the run, and each batch repeats its own, so a worker with
  divergent workload code refuses the work instead of poisoning records.
* coordinator -> worker: ``{"type": "batch", "batch": id,
  "fingerprint": ..., "cells": [cell payloads]}``
* worker -> coordinator: ``{"type": "result", "batch": id,
  "records": [...], "built": {...}}`` or ``{"type": "error", ...}``
* coordinator -> worker: ``{"type": "shutdown"}``

Failure handling: a worker that disconnects mid-batch gets its batch
requeued at the *front* of the pending queue (deterministic reassignment:
the next free worker takes exactly the failed batch), ``worker_restarts``
is counted, and a replacement local worker is spawned while the restart
budget lasts.  Records are keyed by batch id, so scheduling and failures
never change the assembled output -- byte-identical to the serial backend.
"""

from __future__ import annotations

import json
import multiprocessing
import queue
import socket
import struct
import threading
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config_env import wire_mode
from repro.experiments import engine as engine_module
from repro.experiments.backends.base import (
    ExecutorBackend,
    merge_counters,
    plan_batches,
)
from repro.service import wire
from repro.service.frames import (
    BATCH,
    ERROR,
    GOODBYE,
    HELLO,
    REJECT,
    RESULT,
    SHUTDOWN,
    WELCOME,
)
from repro.util.validation import ReproError

#: Bump when the frame vocabulary changes incompatibly.  The binary
#: columnar encoding is *not* a protocol bump: it is negotiated per
#: connection via the ``wire`` capability list in hello/welcome frames
#: (see :mod:`repro.service.wire`) and falls back to these JSON frames.
PROTOCOL_VERSION = 1

#: Hard per-frame ceiling -- a corrupt length prefix must not allocate
#: GBs.  Shared with (and defined by) the binary wire codec.
MAX_FRAME_BYTES = wire.MAX_FRAME_BYTES

#: Handshake / connect socket timeout (seconds).  Liveness only: no value
#: derived from it ever reaches a record.
HANDSHAKE_TIMEOUT = 30.0


def encode_frame(obj) -> bytes:
    """Serialise one frame: 4-byte big-endian length + canonical JSON."""
    blob = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(blob) > MAX_FRAME_BYTES:
        raise ReproError(
            f"frame of {len(blob)} bytes exceeds the {MAX_FRAME_BYTES} limit"
        )
    return struct.pack(">I", len(blob)) + blob


def send_frame(
    sock: socket.socket,
    obj,
    stats: Optional[wire.WireStats] = None,
    binary: bool = False,
) -> None:
    """Write one frame, JSON or (when negotiated) binary-enveloped."""
    blob = wire.encode_binary_frame(obj) if binary else encode_frame(obj)
    sock.sendall(blob)
    if stats is not None:
        stats.add("bytes_sent", len(blob))
        if binary and blob[5] & wire.FLAG_ZLIB:
            stats.add("blocks_compressed", 1)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 65536))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, stats: Optional[wire.WireStats] = None
):
    """Read one length-prefixed frame of either encoding (blocking)."""
    (length,) = struct.unpack(">I", _recv_exact(sock, 4))
    if length > MAX_FRAME_BYTES:
        raise ReproError(
            f"incoming frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES} limit"
        )
    blob = _recv_exact(sock, length)
    if stats is not None:
        stats.add("bytes_received", 4 + length)
    return wire.decode_blob(blob, stats)


def result_records(frame: Dict[str, object]) -> List[Dict[str, object]]:
    """The records of one RESULT frame, whichever encoding carried them:
    the columnar ``block`` (binary wire) or the plain ``records`` list."""
    block = frame.get("block")
    if block is not None:
        return [record for _index, record in wire.decode_record_block(block)]
    return frame.get("records", [])


def parse_address(address: Optional[str]) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``; ``None`` means ephemeral loopback."""
    if address is None:
        return ("127.0.0.1", 0)
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ReproError(
            f"coordinator address {address!r} must look like host:port"
        )
    try:
        return (host, int(port))
    except ValueError:
        raise ReproError(f"coordinator port {port!r} is not an integer")


class _WorkerLink:
    """Coordinator-side view of one connected worker."""

    def __init__(self, worker_id: int, conn: socket.socket):
        self.worker_id = worker_id
        self.conn = conn
        self.batch: Optional[int] = None  #: outstanding batch id
        self.wire = False  #: negotiated binary wire on this connection


class DistributedBackend(ExecutorBackend):
    """Coordinator + N socket worker processes (local by default).

    ``workers`` local processes are spawned per run; external workers that
    dial the coordinator address join the same pool.  ``worker_specs``
    (tests only) overrides the kwargs of each spawned local worker, e.g.
    ``{"fail_after": 0}`` to simulate a crash on its first batch.
    """

    name = "distributed"

    #: Default local worker processes when neither ``workers`` nor ``jobs``
    #: say otherwise.
    DEFAULT_WORKERS = 2

    def __init__(
        self,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        workers: Optional[int] = None,
        coordinator: Optional[str] = None,
        worker_specs: Optional[Sequence[Dict[str, object]]] = None,
        max_restarts: Optional[int] = None,
        stall_timeout: float = 300.0,
        wire_encoding: Optional[str] = None,
    ):
        super().__init__(
            jobs=jobs, chunk_size=chunk_size, workers=workers,
            coordinator=coordinator,
        )
        if workers is None:
            workers = max(self.DEFAULT_WORKERS, jobs if jobs > 1 else 0)
        # ``workers == 0`` is coordinator-only mode: spawn nothing locally
        # and wait for external workers to dial in.  That only makes sense
        # with an explicit, advertisable address.
        if workers < 1 and not worker_specs and coordinator is None:
            raise ReproError(
                f"distributed backend needs >= 1 local worker (got "
                f"{workers}) unless --coordinator names an address for "
                "external workers to join"
            )
        self.n_workers = len(worker_specs) if worker_specs else workers
        self.worker_specs = list(worker_specs) if worker_specs else None
        self.max_restarts = (
            max_restarts if max_restarts is not None else self.n_workers
        )
        self.stall_timeout = stall_timeout
        #: Advertise the binary columnar wire?  Explicit argument beats
        #: ``$REPRO_WIRE`` beats the ``binary`` default; each connection
        #: still falls back to JSON unless the worker advertised too.
        self.wire_binary = wire_mode(wire_encoding) == "binary"
        self._wire_stats = wire.WireStats()
        self._events: "queue.Queue[Tuple]" = queue.Queue()
        self._fingerprints: List[str] = []
        self._next_worker_id = 0
        self._id_lock = threading.Lock()
        self._processes: List[multiprocessing.Process] = []
        self._address: Tuple[str, int] = ("127.0.0.1", 0)

    # --------------------------------------------------------- accept side
    def _handshake(self, conn: socket.socket) -> Optional[bool]:
        """Run the hello/welcome exchange.

        Returns ``None`` when the worker was rejected, otherwise whether
        the connection negotiated the binary wire (both sides advertised
        ``wire=v2`` -- old workers simply never do).
        """
        conn.settimeout(HANDSHAKE_TIMEOUT)
        hello = recv_frame(conn, self._wire_stats)
        if (
            hello.get("type") != HELLO
            or hello.get("schema") != engine_module.ENGINE_SCHEMA
            or hello.get("protocol") != PROTOCOL_VERSION
        ):
            send_frame(
                conn,
                {
                    "type": REJECT,
                    "reason": (
                        f"schema/protocol mismatch: coordinator has "
                        f"schema={engine_module.ENGINE_SCHEMA} "
                        f"protocol={PROTOCOL_VERSION}, worker sent "
                        f"schema={hello.get('schema')} "
                        f"protocol={hello.get('protocol')}"
                    ),
                },
                stats=self._wire_stats,
            )
            return None
        send_frame(
            conn,
            {
                "type": WELCOME,
                "schema": engine_module.ENGINE_SCHEMA,
                "protocol": PROTOCOL_VERSION,
                "fingerprints": list(self._fingerprints),
                "wire": wire.wire_capabilities(self.wire_binary),
            },
            stats=self._wire_stats,
        )
        conn.settimeout(None)
        return wire.negotiate_wire(self.wire_binary, hello.get("wire"))

    def _accept_loop(self, listener: socket.socket) -> None:
        while True:
            try:
                conn, _ = listener.accept()
            except OSError:
                return  # listener closed: run over
            try:
                negotiated = self._handshake(conn)
                if negotiated is None:
                    conn.close()
                    continue
            except (OSError, ValueError, ReproError):
                conn.close()
                continue
            with self._id_lock:
                worker_id = self._next_worker_id
                self._next_worker_id += 1
            link = _WorkerLink(worker_id, conn)
            link.wire = negotiated
            self._events.put(("joined", link))
            reader = threading.Thread(
                target=self._reader_loop, args=(link,), daemon=True
            )
            reader.start()

    def _reader_loop(self, link: _WorkerLink) -> None:
        try:
            while True:
                frame = recv_frame(link.conn, self._wire_stats)
                self._events.put(("frame", link, frame))
                if frame.get("type") == GOODBYE:
                    return
        except (OSError, ValueError, ReproError, ConnectionError):
            self._events.put(("lost", link))

    # --------------------------------------------------------- worker side
    def _spawn_worker(self, address: Tuple[str, int], spec: Dict[str, object]) -> None:
        from repro.experiments.backends import worker as worker_module

        process = multiprocessing.Process(
            target=worker_module.worker_loop,
            args=(address,),
            kwargs=dict(spec),
            daemon=True,
        )
        process.start()
        self._processes.append(process)

    # ---------------------------------------------------------------- run
    def run(self, cells, on_record=None):
        cells = list(cells)
        if not cells:
            return [] if on_record is None else None
        self._wire_stats = wire.WireStats()
        batches = plan_batches(
            cells, self.chunk_size,
            parts=self.n_workers or self.DEFAULT_WORKERS,
        )
        frames = self._batch_frames(cells, batches)
        self._fingerprints = sorted({f["fingerprint"] for f in frames})

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(parse_address(self.coordinator))
        listener.listen(max(8, 2 * self.n_workers))
        address = listener.getsockname()
        self._address = (address[0], address[1])
        acceptor = threading.Thread(
            target=self._accept_loop, args=(listener,), daemon=True
        )
        acceptor.start()

        specs = self.worker_specs or [{} for _ in range(self.n_workers)]
        for spec in specs:
            self._spawn_worker(address, spec)

        on_batch = None
        if on_record is not None:
            def on_batch(batch_id, batch_records):
                for index, record in zip(batches[batch_id], batch_records):
                    on_record(index, record)

        try:
            results = self._coordinate(frames, on_batch=on_batch)
        finally:
            listener.close()
            self._shutdown_workers()

        self.counters["frames_sent"] += len(frames)
        for name, value in self._wire_stats.snapshot().items():
            self.counters[name] += value
        if on_record is not None:
            return None
        records: List[Optional[Dict[str, object]]] = [None] * len(cells)
        for batch_id, batch in enumerate(batches):
            batch_records = results[batch_id]
            for index, record in zip(batch, batch_records):
                records[index] = record
        return records

    def _batch_frames(self, cells, batches) -> List[Dict[str, object]]:
        frames = []
        for batch_id, batch in enumerate(batches):
            first = cells[batch[0]]
            fingerprint = engine_module.library_fingerprint(
                first.workload, first.budget,
                first.workload_params, first.budget_params,
            )
            frames.append(
                {
                    "type": BATCH,
                    "batch": batch_id,
                    "fingerprint": fingerprint,
                    "cells": [cells[i].payload() for i in batch],
                }
            )
        return frames

    def _coordinate(
        self, frames, on_batch=None
    ) -> Dict[int, List[Dict[str, object]]]:
        pending = deque(range(len(frames)))
        idle: "deque[_WorkerLink]" = deque()
        live: Dict[int, _WorkerLink] = {}
        results: Dict[int, List[Dict[str, object]]] = {}
        done: set = set()
        held: Dict[int, List[Dict[str, object]]] = {}
        next_emit = [0]
        restarts_used = 0

        def complete(batch_id: int, batch_records) -> None:
            done.add(batch_id)
            if on_batch is None:
                results[batch_id] = batch_records
                return
            # Streaming: release finished batches in dispatch (batch-id)
            # order, so the hold-back never exceeds the in-flight window
            # and the caller sees one deterministic delivery order.
            held[batch_id] = batch_records
            while next_emit[0] in held:
                on_batch(next_emit[0], held.pop(next_emit[0]))
                next_emit[0] += 1

        def dispatch() -> None:
            while pending and idle:
                link = idle.popleft()
                if link.worker_id not in live:
                    continue
                batch_id = pending.popleft()
                link.batch = batch_id
                try:
                    send_frame(
                        link.conn, frames[batch_id],
                        stats=self._wire_stats, binary=link.wire,
                    )
                except OSError:
                    self._events.put(("lost", link))

        while len(done) < len(frames):
            dispatch()
            try:
                event = self._events.get(timeout=self.stall_timeout)
            except queue.Empty:
                raise ReproError(
                    f"distributed backend stalled: "
                    f"{len(done)}/{len(frames)} batches done, "
                    f"{len(live)} live workers"
                )
            kind, link = event[0], event[1]
            if kind == "joined":
                live[link.worker_id] = link
                idle.append(link)
            elif kind == "frame":
                frame = event[2]
                ftype = frame.get("type")
                if ftype == RESULT:
                    batch_id = frame.get("batch")
                    if batch_id not in done:
                        merge_counters(self.counters, frame.get("built", {}))
                        complete(batch_id, result_records(frame))
                    link.batch = None
                    idle.append(link)
                elif ftype == ERROR:
                    raise ReproError(
                        f"worker {link.worker_id} rejected batch "
                        f"{frame.get('batch')}: {frame.get('message')}"
                    )
            elif kind == "lost":
                if link.worker_id not in live:
                    continue  # already reaped (e.g. send + reader both saw it)
                del live[link.worker_id]
                try:
                    link.conn.close()
                except OSError:
                    pass
                if link.batch is not None and link.batch not in done:
                    # Deterministic reassignment: the interrupted batch goes
                    # to the *front*, so the next free worker re-runs it.
                    pending.appendleft(link.batch)
                    link.batch = None
                self.counters["worker_restarts"] += 1
                if restarts_used < self.max_restarts:
                    restarts_used += 1
                    # The replacement dials the original coordinator address.
                    self._spawn_worker(self._address, {})
                elif not live:
                    raise ReproError(
                        "distributed backend lost every worker and the "
                        f"restart budget ({self.max_restarts}) is spent"
                    )
        for link in sorted(live.values(), key=lambda l: l.worker_id):
            try:
                send_frame(link.conn, {"type": SHUTDOWN})
                link.conn.close()
            except OSError:
                pass
        return results

    def _shutdown_workers(self) -> None:
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        self._processes = []


__all__ = [
    "DistributedBackend",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "encode_frame",
    "parse_address",
    "recv_frame",
    "result_records",
    "send_frame",
]
