"""The ``service`` executor backend: sweeps through the always-on daemon.

Two modes, selected by ``--coordinator``:

* **Connected** (``--backend service --coordinator HOST:PORT``): the
  sweep becomes one *job* on a running ``repro serve`` daemon, sharing
  its worker fleet, fair scheduler and network-served record store with
  every other submitter.
* **Self-hosted** (no coordinator): an ephemeral daemon is started on a
  background thread with local workers and a private temporary store,
  the job runs against it, and the daemon is drained and the store
  removed afterwards.  This keeps ``--backend service`` usable in tests
  and determinism gates without external processes -- and without ever
  touching the repo's own ``.repro_cache``.

Either way the records come back keyed by input index and pass through
the same ``execute_cell`` path as every other backend, so a service
sweep is byte-identical to a serial one (gated in
``scripts/check_determinism.py``).
"""

from __future__ import annotations

import shutil
import tempfile

from repro.experiments.backends.base import ExecutorBackend, merge_counters


class ServiceBackend(ExecutorBackend):
    """Submit the sweep as one job to a (possibly ephemeral) daemon."""

    name = "service"

    def run(self, cells, on_record=None):
        payloads = [cell.payload() for cell in cells]
        if self.coordinator:
            return self._run_connected(self.coordinator, payloads, on_record)
        return self._run_self_hosted(payloads, on_record)

    def _run_connected(self, coordinator, payloads, on_record=None):
        # Imported here, not at module top: repro.service pulls in this
        # package's __init__ through the shared frame codec, so a
        # top-level import would be circular when repro.service loads
        # first.
        from repro.service.client import ServiceClient

        client = ServiceClient(coordinator)
        try:
            records, counters = client.run_job(
                payloads, chunk=self.chunk_size, on_record=on_record
            )
        finally:
            client.close()
        merge_counters(self.counters, counters)
        return records

    def _run_self_hosted(self, payloads, on_record=None):
        from repro.service.daemon import SweepService, start_service_thread

        workers = (
            self.workers
            if self.workers is not None
            else SweepService.DEFAULT_WORKERS
        )
        cache_dir = tempfile.mkdtemp(prefix="repro-service-")
        handle = start_service_thread(workers=workers, cache_dir=cache_dir)
        try:
            return self._run_connected(handle.coordinator, payloads, on_record)
        finally:
            handle.stop()
            shutil.rmtree(cache_dir, ignore_errors=True)


__all__ = ["ServiceBackend"]
