"""Executor-backend interface and the shared batch planner.

A backend answers one question for :class:`~repro.experiments.engine
.SweepEngine`: given the cells that missed the cache, produce their
records.  Every backend funnels each cell through
:func:`repro.experiments.engine.execute_cell` (directly or inside a
worker process), which is the whole determinism argument -- the backend
only chooses *where* a cell runs, never *how*.

Batches are the dispatch unit: :func:`plan_batches` groups cells that
share a library fingerprint key and chunks each group, so one IPC frame
carries work a worker can serve from a single compiled library (and a
single application build per seed in the group).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.engine import SweepCell

#: Counter names every backend reports (merged into ``EngineStats``).
COUNTER_NAMES: Tuple[str, ...] = (
    "applications_built",
    "applications_saved",
    "libraries_built",
    "libraries_saved",
    "frames_sent",
    "worker_restarts",
    "remote_cache_hits",
    "jobs_completed",
    "bytes_sent",
    "bytes_received",
    "frames_coalesced",
    "blocks_compressed",
)


def new_counters() -> Dict[str, int]:
    return {name: 0 for name in COUNTER_NAMES}


def merge_counters(into: Dict[str, int], delta: Dict[str, int]) -> None:
    for name in COUNTER_NAMES:
        into[name] += int(delta.get(name, 0))


def group_key(cell: SweepCell) -> Tuple:
    """The library-memo key of a cell: cells sharing it reuse one compiled
    library (and its fingerprint), so they belong in the same batch."""
    return (cell.workload, cell.workload_params, cell.budget, cell.budget_params)


def plan_batches(
    cells: Sequence[SweepCell],
    chunk_size: Optional[int] = None,
    parts: int = 1,
) -> List[List[int]]:
    """Partition ``cells`` into dispatchable batches of indices.

    Cells are grouped by :func:`group_key` in first-appearance order, then
    each group is chunked -- to ``chunk_size`` cells when given, otherwise
    to roughly four batches per worker (``parts``) so stragglers do not
    serialise the tail.  Batches never span groups: one frame, one library.
    """
    groups: Dict[Tuple, List[int]] = {}
    order: List[Tuple] = []
    for index, cell in enumerate(cells):
        key = group_key(cell)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(index)
    if chunk_size is None:
        chunk = max(1, math.ceil(len(cells) / max(1, parts * 4)))
    else:
        chunk = max(1, chunk_size)
    batches: List[List[int]] = []
    for key in order:
        indices = groups[key]
        for lo in range(0, len(indices), chunk):
            batches.append(indices[lo:lo + chunk])
    return batches


class ExecutorBackend:
    """Base class of the registered executor backends.

    Subclasses implement :meth:`run`; its signature must keep the serial
    backend's arguments as a prefix (enforced by the
    ``backend-run-signature`` lint invariant), so the engine can route any
    cell list through any registered backend unchanged.
    """

    name = "base"

    def __init__(
        self,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        workers: Optional[int] = None,
        coordinator: Optional[str] = None,
    ):
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.workers = workers
        self.coordinator = coordinator
        self.counters = new_counters()

    def run(self, cells, on_record=None):
        """Execute ``cells``; returns one record per cell, in input order.

        With ``on_record`` given, the backend *streams* instead:
        ``on_record(index, record)`` is called exactly once per cell
        (``index`` into ``cells``), and ``run`` returns ``None`` so no
        O(cells) record list is ever built.  Delivery order is
        backend-defined but deterministic -- callers key on the index,
        never on arrival order.  Backends whose transport completes out
        of order hold finished batches back and release them in dispatch
        order, bounding the hold-back by in-flight batches.
        """
        raise NotImplementedError


__all__ = [
    "COUNTER_NAMES",
    "ExecutorBackend",
    "group_key",
    "merge_counters",
    "new_counters",
    "plan_batches",
]
