"""The socket worker loop (and its ``python -m`` entry point).

A worker dials the coordinator, handshakes (its :data:`ENGINE_SCHEMA` and
protocol version must match, or it is rejected), then serves batch frames
until told to shut down.  Every batch's library fingerprint is recomputed
locally and compared against the coordinator's -- a worker whose checkout
builds a structurally different ISE library answers with an error frame
instead of returning records minted from divergent code.

Run a remote worker against a coordinator listening on a routable
address with::

    python -m repro.experiments.backends.worker --coordinator HOST:PORT

Against the long-lived ``repro serve`` daemon, add ``--reconnect`` and
the worker survives coordinator restarts: lost connections are redialed
on a capped exponential backoff schedule (:func:`reconnect_delays`) that
is deliberately jitter-free -- the fleet is small and a deterministic
schedule is unit-testable, which this repo values over thundering-herd
insurance.

Batch execution funnels through :func:`repro.experiments.engine
.execute_batch`, so worker-side construction memoisation (one application
per seed, one compiled library per budget) and the byte-identity to the
serial backend both come for free.
"""

from __future__ import annotations

import os
import socket
import sys
import time
from typing import List, Optional, Tuple

from repro.config_env import wire_mode
from repro.experiments import engine as engine_module
from repro.experiments.backends.distributed import (
    PROTOCOL_VERSION,
    encode_frame,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.service import wire
from repro.service.frames import (
    BATCH,
    ERROR,
    GOODBYE,
    HELLO,
    REJECT,
    RESULT,
    SHUTDOWN,
    WELCOME,
)
from repro.util.validation import ReproError

#: Seconds to wait for the coordinator to accept the dial.
CONNECT_TIMEOUT = 30.0

#: Reconnect backoff: first retry delay and the cap it doubles toward.
RECONNECT_BASE = 0.1
RECONNECT_CAP = 5.0

#: Consecutive failed dials tolerated before ``--reconnect`` gives up.
DEFAULT_MAX_ATTEMPTS = 8


def reconnect_delays(
    attempts: int,
    base: float = RECONNECT_BASE,
    cap: float = RECONNECT_CAP,
) -> List[float]:
    """The deterministic backoff schedule: ``base * 2**n`` capped at
    ``cap``, one delay per failed dial attempt.  No jitter on purpose --
    the schedule is part of the worker's observable contract."""
    return [min(cap, base * (2 ** n)) for n in range(attempts)]


def worker_loop(
    address: Tuple[str, int],
    fail_after: Optional[int] = None,
    wire_encoding: Optional[str] = None,
) -> int:
    """Serve batches from the coordinator at ``address`` until shutdown.

    ``fail_after`` is a test hook: after serving that many batches the
    worker exits hard (no result frame) on its next batch, simulating a
    crashed host so the coordinator's requeue/restart path can be
    exercised deterministically.

    ``wire_encoding`` overrides ``$REPRO_WIRE``; under the negotiated
    binary wire, result records travel as one columnar block per batch
    and outbound frames coalesce Nagle-style: they queue in a
    :class:`repro.service.wire.FrameSender` and flush only when the
    inbound socket goes idle (nothing further to batch with), when the
    buffer crosses its size threshold, or -- unconditionally -- before
    the GOODBYE that answers a SHUTDOWN, so a drain never drops queued
    tail results.

    Returns a process exit code: ``0`` clean shutdown, ``1`` the
    coordinator was unreachable, ``2`` the handshake was rejected, ``3``
    the connection was lost *after* a successful handshake (the case
    ``--reconnect`` retries immediately, since the coordinator clearly
    existed a moment ago).
    """
    local_binary = wire_mode(wire_encoding) == "binary"
    welcomed = False
    try:
        sock = socket.create_connection(tuple(address), timeout=CONNECT_TIMEOUT)
    except OSError as error:
        print(
            f"error: cannot reach coordinator at "
            f"{address[0]}:{address[1]}: {error}",
            file=sys.stderr,
        )
        return 1
    sock.settimeout(None)
    try:
        send_frame(
            sock,
            {
                "type": HELLO,
                "schema": engine_module.ENGINE_SCHEMA,
                "protocol": PROTOCOL_VERSION,
                "wire": wire.wire_capabilities(local_binary),
            },
        )
        welcome = recv_frame(sock)
        if welcome.get("type") == REJECT:
            print(
                f"worker rejected: {welcome.get('reason')}", file=sys.stderr
            )
            return 2
        if welcome.get("type") != WELCOME:
            print(
                f"worker expected a welcome frame, got: {welcome}",
                file=sys.stderr,
            )
            return 2
        welcomed = True
        binary = wire.negotiate_wire(local_binary, welcome.get("wire"))
        # Every outbound frame rides the coalescing sender so queue order
        # is send order; control frames flush explicitly.
        sender = wire.FrameSender(sock)
        served = 0
        while True:
            # Nagle-style idle flush: when the socket already holds the
            # next inbound frame, serving it may yield more output to
            # coalesce into the same write, so hold the buffer; flush
            # the moment the inbound side goes quiet.
            if sender.pending and not wire.data_ready(sock):
                sender.flush()
            frame = recv_frame(sock)
            ftype = frame.get("type")
            if ftype == SHUTDOWN:
                # Drain: queued tail results must leave before the clean
                # goodbye, or an orderly shutdown would drop them.
                sender.queue(encode_frame({"type": GOODBYE}))
                try:
                    sender.flush()
                except OSError:
                    pass
                return 0
            if ftype != BATCH:
                sender.queue(
                    encode_frame(
                        {
                            "type": ERROR,
                            "batch": frame.get("batch"),
                            "message": f"unexpected frame type {ftype!r}",
                        }
                    )
                )
                sender.flush()
                continue
            if fail_after is not None and served >= fail_after:
                # Simulated crash: die before replying (test hook).
                os._exit(17)
            cells = [
                engine_module.SweepCell.from_payload(payload)
                for payload in frame["cells"]
            ]
            first = cells[0]
            fingerprint = engine_module.library_fingerprint(
                first.workload, first.budget,
                first.workload_params, first.budget_params,
            )
            expected = frame.get("fingerprint")
            if expected is not None and expected != fingerprint:
                sender.queue(
                    encode_frame(
                        {
                            "type": ERROR,
                            "batch": frame["batch"],
                            "message": (
                                f"library fingerprint mismatch: coordinator "
                                f"expects {expected[:12]}..., this worker "
                                f"builds {fingerprint[:12]}... -- workload "
                                "code has diverged between hosts"
                            ),
                        }
                    )
                )
                sender.flush()
                continue
            records, built = engine_module.execute_batch(cells)
            served += 1
            result = {
                "type": RESULT,
                "batch": frame["batch"],
                "built": built,
            }
            if binary:
                result["block"] = wire.encode_record_block(
                    list(enumerate(records))
                )
                sender.queue(wire.encode_binary_frame(result))
            else:
                result["records"] = records
                sender.queue(encode_frame(result))
    except (ConnectionError, OSError):
        return 3 if welcomed else 1
    finally:
        try:
            sock.close()
        except OSError:
            pass


def run_worker(
    address: Tuple[str, int],
    reconnect: bool = False,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    fail_after: Optional[int] = None,
) -> int:
    """:func:`worker_loop`, optionally wrapped in the reconnect policy.

    With ``reconnect`` enabled, a connection lost after a successful
    handshake (exit code ``3``) resets the attempt counter and redials
    after the base delay; an unreachable coordinator (code ``1``) walks
    the :func:`reconnect_delays` schedule and gives up -- returning
    ``1`` -- once ``max_attempts`` consecutive dials have failed.  Clean
    shutdown (``0``) and handshake rejection (``2``) never retry: the
    first is the coordinator's explicit goodbye, the second will not
    improve without a code change on one side.
    """
    if not reconnect:
        return worker_loop(address, fail_after=fail_after)
    delays = reconnect_delays(max_attempts)
    failures = 0
    while True:
        code = worker_loop(address, fail_after=fail_after)
        if code in (0, 2):
            return code
        if code == 3:
            # The coordinator existed: treat the redial as a fresh start.
            failures = 0
            time.sleep(RECONNECT_BASE)
            continue
        if failures >= len(delays):
            # The initial dial plus one per walked backoff delay.
            print(
                f"error: giving up after {failures + 1} failed dial attempts",
                file=sys.stderr,
            )
            return 1
        time.sleep(delays[failures])
        failures += 1


def main(argv=None) -> int:
    """CLI entry point for cross-host workers."""
    import argparse

    parser = argparse.ArgumentParser(
        description="repro sweep worker: dial a distributed-backend "
        "coordinator (or the repro serve daemon) and serve cell batches"
    )
    parser.add_argument(
        "--coordinator",
        required=True,
        help="coordinator address as host:port",
    )
    parser.add_argument(
        "--reconnect",
        action="store_true",
        help="redial a lost coordinator on a capped exponential "
        "backoff schedule instead of exiting",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=DEFAULT_MAX_ATTEMPTS,
        help="consecutive failed dials tolerated before --reconnect "
        "gives up (default %(default)s)",
    )
    args = parser.parse_args(argv)
    try:
        address = parse_address(args.coordinator)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return run_worker(
        address, reconnect=args.reconnect, max_attempts=args.max_attempts
    )


if __name__ == "__main__":
    sys.exit(main())
