"""The socket worker loop (and its ``python -m`` entry point).

A worker dials the coordinator, handshakes (its :data:`ENGINE_SCHEMA` and
protocol version must match, or it is rejected), then serves batch frames
until told to shut down.  Every batch's library fingerprint is recomputed
locally and compared against the coordinator's -- a worker whose checkout
builds a structurally different ISE library answers with an error frame
instead of returning records minted from divergent code.

Run a remote worker against a coordinator listening on a routable
address with::

    python -m repro.experiments.backends.worker --coordinator HOST:PORT

Batch execution funnels through :func:`repro.experiments.engine
.execute_batch`, so worker-side construction memoisation (one application
per seed, one compiled library per budget) and the byte-identity to the
serial backend both come for free.
"""

from __future__ import annotations

import os
import socket
import sys
from typing import Optional, Tuple

from repro.experiments import engine as engine_module
from repro.experiments.backends.distributed import (
    PROTOCOL_VERSION,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.util.validation import ReproError

#: Seconds to wait for the coordinator to accept the dial.
CONNECT_TIMEOUT = 30.0


def worker_loop(
    address: Tuple[str, int],
    fail_after: Optional[int] = None,
) -> int:
    """Serve batches from the coordinator at ``address`` until shutdown.

    ``fail_after`` is a test hook: after serving that many batches the
    worker exits hard (no result frame) on its next batch, simulating a
    crashed host so the coordinator's requeue/restart path can be
    exercised deterministically.  Returns a process exit code.
    """
    try:
        sock = socket.create_connection(tuple(address), timeout=CONNECT_TIMEOUT)
    except OSError as error:
        print(
            f"error: cannot reach coordinator at "
            f"{address[0]}:{address[1]}: {error}",
            file=sys.stderr,
        )
        return 1
    sock.settimeout(None)
    try:
        send_frame(
            sock,
            {
                "type": "hello",
                "schema": engine_module.ENGINE_SCHEMA,
                "protocol": PROTOCOL_VERSION,
            },
        )
        welcome = recv_frame(sock)
        if welcome.get("type") != "welcome":
            print(
                f"worker rejected: {welcome.get('reason', welcome)}",
                file=sys.stderr,
            )
            return 2
        served = 0
        while True:
            frame = recv_frame(sock)
            ftype = frame.get("type")
            if ftype == "shutdown":
                return 0
            if ftype != "batch":
                send_frame(
                    sock,
                    {
                        "type": "error",
                        "batch": frame.get("batch"),
                        "message": f"unexpected frame type {ftype!r}",
                    },
                )
                continue
            if fail_after is not None and served >= fail_after:
                # Simulated crash: die before replying (test hook).
                os._exit(17)
            cells = [
                engine_module.SweepCell.from_payload(payload)
                for payload in frame["cells"]
            ]
            first = cells[0]
            fingerprint = engine_module.library_fingerprint(
                first.workload, first.budget,
                first.workload_params, first.budget_params,
            )
            expected = frame.get("fingerprint")
            if expected is not None and expected != fingerprint:
                send_frame(
                    sock,
                    {
                        "type": "error",
                        "batch": frame["batch"],
                        "message": (
                            f"library fingerprint mismatch: coordinator "
                            f"expects {expected[:12]}..., this worker "
                            f"builds {fingerprint[:12]}... -- workload "
                            "code has diverged between hosts"
                        ),
                    },
                )
                continue
            records, built = engine_module.execute_batch(cells)
            served += 1
            send_frame(
                sock,
                {
                    "type": "result",
                    "batch": frame["batch"],
                    "records": records,
                    "built": built,
                },
            )
    except (ConnectionError, OSError):
        return 1
    finally:
        try:
            sock.close()
        except OSError:
            pass


def main(argv=None) -> int:
    """CLI entry point for cross-host workers."""
    import argparse

    parser = argparse.ArgumentParser(
        description="repro sweep worker: dial a distributed-backend "
        "coordinator and serve cell batches"
    )
    parser.add_argument(
        "--coordinator",
        required=True,
        help="coordinator address as host:port",
    )
    args = parser.parse_args(argv)
    try:
        address = parse_address(args.coordinator)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return worker_loop(address)


if __name__ == "__main__":
    sys.exit(main())
