"""The process-pool backend: batches over a local ProcessPoolExecutor.

Each mapped item is one :func:`~repro.experiments.engine.execute_batch`
call, so a worker builds the batch's library once and serves the whole
chunk from its memo.  ``pool.map`` preserves submission order, which keeps
the reassembled records in input order regardless of completion order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.experiments import engine as engine_module
from repro.experiments.backends.base import (
    ExecutorBackend,
    merge_counters,
    plan_batches,
)


class PoolBackend(ExecutorBackend):
    """Fans batches out over ``jobs`` local worker processes."""

    name = "pool"

    def run(self, cells):
        cells = list(cells)
        if not cells:
            return []
        workers = max(1, min(self.jobs, len(cells)))
        if workers == 1 or len(cells) == 1:
            records, built = engine_module.execute_batch(cells)
            merge_counters(self.counters, built)
            return records
        batches = plan_batches(cells, self.chunk_size, parts=workers)
        payloads = [[cells[i] for i in batch] for batch in batches]
        with ProcessPoolExecutor(max_workers=min(workers, len(batches))) as pool:
            outcomes = list(pool.map(engine_module.execute_batch, payloads))
        records = [None] * len(cells)
        for batch, (batch_records, built) in zip(batches, outcomes):
            merge_counters(self.counters, built)
            for index, record in zip(batch, batch_records):
                records[index] = record
        self.counters["frames_sent"] += len(batches)
        return records


__all__ = ["PoolBackend"]
