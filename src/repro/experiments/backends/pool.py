"""The process-pool backend: batches over a local ProcessPoolExecutor.

Each mapped item is one :func:`~repro.experiments.engine.execute_batch`
call, so a worker builds the batch's library once and serves the whole
chunk from its memo.  ``pool.map`` preserves submission order, which keeps
the reassembled records in input order regardless of completion order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.experiments import engine as engine_module
from repro.experiments.backends.base import (
    ExecutorBackend,
    merge_counters,
    plan_batches,
)


class PoolBackend(ExecutorBackend):
    """Fans batches out over ``jobs`` local worker processes."""

    name = "pool"

    def run(self, cells, on_record=None):
        cells = list(cells)
        if not cells:
            return [] if on_record is None else None
        workers = max(1, min(self.jobs, len(cells)))
        if workers == 1 or len(cells) == 1:
            records, built = engine_module.execute_batch(cells)
            merge_counters(self.counters, built)
            if on_record is None:
                return records
            for index, record in enumerate(records):
                on_record(index, record)
            return None
        batches = plan_batches(cells, self.chunk_size, parts=workers)
        payloads = [[cells[i] for i in batch] for batch in batches]
        records = None if on_record else [None] * len(cells)
        with ProcessPoolExecutor(max_workers=min(workers, len(batches))) as pool:
            # ``pool.map`` yields outcomes in submission order; consuming
            # it lazily keeps at most the executor's internal buffer of
            # finished batches alive instead of a full result list.
            for batch, (batch_records, built) in zip(
                batches, pool.map(engine_module.execute_batch, payloads)
            ):
                merge_counters(self.counters, built)
                for index, record in zip(batch, batch_records):
                    if records is None:
                        on_record(index, record)
                    else:
                        records[index] = record
        self.counters["frames_sent"] += len(batches)
        return records


__all__ = ["PoolBackend"]
