"""Ablations of the mRTS design decisions (DESIGN.md Section 6).

Not a paper figure: quantifies the contribution of each mRTS ingredient by
disabling it and re-running the encoder --

* the monoCG-Extension in the ECU cascade (Section 4.2),
* execution on intermediate ISEs (Section 4.1),
* the MPU's error back-propagation (alpha = 0 freezes the offline profile),
* selection-overhead hiding (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import MRTSConfig
from repro.core.mrts import MRTS
from repro.experiments.common import MatrixRunner
from repro.fabric.resources import ResourceBudget
from repro.util.tables import render_table

VARIANTS: Dict[str, MRTSConfig] = {
    "full mRTS": MRTSConfig(),
    "no monoCG-Extension": MRTSConfig(enable_monocg=False),
    "no intermediate ISEs": MRTSConfig(enable_intermediate=False),
    "no MPU adaptation (alpha=0)": MRTSConfig(mpu_alpha=0.0),
    "no overhead hiding": MRTSConfig(hide_selection_overhead=False),
}


@dataclass
class AblationResult:
    budget_label: str
    cycles: Dict[str, int]

    def slowdown(self, variant: str) -> float:
        """How much slower the variant is than full mRTS (1.0 = no change)."""
        return self.cycles[variant] / self.cycles["full mRTS"]

    def render(self) -> str:
        rows = [
            [name, self.cycles[name], round(self.slowdown(name), 3)]
            for name in VARIANTS
        ]
        return render_table(
            ["variant", "cycles", "slowdown vs full"],
            rows,
            title=f"Ablations at fabric combination {self.budget_label}",
        )


def run_ablations(
    frames: int = 16,
    seed: int = 7,
    n_cg: int = 2,
    n_prc: int = 2,
) -> AblationResult:
    """Run every ablation variant on the same workload and budget."""
    runner = MatrixRunner(frames=frames, seed=seed)
    budget = ResourceBudget(n_prcs=n_prc, n_cg_fabrics=n_cg)
    cycles = {}
    for name, config in VARIANTS.items():
        cycles[name] = runner.run(budget, lambda c=config: _named_mrts(c, name)).total_cycles
    return AblationResult(budget_label=budget.label, cycles=cycles)


def _named_mrts(config: MRTSConfig, name: str) -> MRTS:
    policy = MRTS(config)
    policy.name = f"mrts[{name}]"
    return policy


__all__ = ["run_ablations", "AblationResult", "VARIANTS"]
