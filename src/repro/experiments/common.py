"""Shared machinery of the experiment modules."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.experiments.engine import SweepCell, SweepEngine, policy_name_of
from repro.fabric.resources import ResourceBudget
from repro.sim.policy import RuntimePolicy
from repro.sim.program import Application
from repro.sim.simulator import SimulationResult, Simulator
from repro.workloads.h264 import h264_application, h264_library

#: Canonical experiment workload parameters (chosen so FG reconfiguration
#: amortisation and run-time variation both play out, cf. DESIGN.md).
DEFAULT_FRAMES = 16
DEFAULT_SEED = 7


class MatrixRunner:
    """Runs (budget, policy) combinations on one application, with caching.

    The comparison figures share many cells (e.g. the RISC reference), so
    results are memoised per ``(budget.label, policy name)``.

    With an ``engine`` attached (and no custom ``application``), grid
    experiments can :meth:`prefetch` their cycle counts through the
    parallel/cached sweep engine; :meth:`cycles` then serves from the
    prefetched records and only falls back to in-process simulation for
    cells the engine did not cover (e.g. trace collection).
    """

    def __init__(self, application: Application = None, frames: int = DEFAULT_FRAMES,
                 seed: int = DEFAULT_SEED, engine: Optional[SweepEngine] = None):
        self.application = application or h264_application(frames=frames, seed=seed)
        self.frames = frames
        self.seed = seed
        # Engine cells rebuild the canonical h264 application from
        # (frames, seed); a hand-built application has no such recipe.
        self.engine = engine if application is None else None
        self._cache: Dict[Tuple[str, str], SimulationResult] = {}
        self._prefetched_cycles: Dict[Tuple[str, str], int] = {}

    def _cell(self, budget: ResourceBudget, policy_name: str) -> SweepCell:
        return SweepCell.make(
            (budget.n_cg_fabrics, budget.n_prcs),
            self.seed,
            policy_name,
            workload="h264",
            workload_params={"frames": self.frames},
        )

    def prefetch(
        self,
        budgets: Sequence[ResourceBudget],
        policy_names: Sequence[str],
    ) -> None:
        """Run the (budget x policy) grid through the engine in one batch.

        No-op without an engine, so grid experiments can call this
        unconditionally and keep working serially in-process by default.
        """
        if self.engine is None:
            return
        cells = [
            self._cell(budget, name)
            for budget in budgets
            for name in policy_names
        ]
        records = self.engine.run(cells)
        for cell, record in zip(cells, records):
            key = (record["budget_label"], cell.policy)
            self._prefetched_cycles[key] = record["total_cycles"]

    def run(
        self,
        budget: ResourceBudget,
        policy_factory: Callable[[], RuntimePolicy],
        collect_trace: bool = False,
    ) -> SimulationResult:
        probe = policy_factory()
        key = (budget.label, probe.name, collect_trace)
        if key not in self._cache:
            library = h264_library(budget)
            self._cache[key] = Simulator(
                self.application, library, budget, probe, collect_trace=collect_trace
            ).run()
        return self._cache[key]

    def cycles(self, budget: ResourceBudget, policy_factory) -> int:
        name = policy_name_of(policy_factory)
        if name is not None:
            prefetched = self._prefetched_cycles.get((budget.label, name))
            if prefetched is not None:
                return prefetched
        return self.run(budget, policy_factory).total_cycles


def budget_grid(max_cg: int, max_prc: int) -> List[ResourceBudget]:
    """All (CG fabrics, PRCs) combinations, ordered like the paper's x-axes
    (CG-major: "00", "01", ..., "<max_cg><max_prc>")."""
    return [
        ResourceBudget(n_prcs=prc, n_cg_fabrics=cg)
        for cg in range(max_cg + 1)
        for prc in range(max_prc + 1)
    ]


def geometric_mean(values: List[float]) -> float:
    """Geometric mean (speedups average multiplicatively)."""
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


__all__ = [
    "MatrixRunner",
    "budget_grid",
    "geometric_mean",
    "DEFAULT_FRAMES",
    "DEFAULT_SEED",
]
