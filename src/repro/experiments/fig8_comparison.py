"""Fig. 8: comparison with the state of the art.

For every fabric combination (CG fabrics 0..4 x PRCs 0..3, labelled "00" ..
"43" as on the paper's x-axis) the H.264 encoder is executed under the
RISPP-like approach, the offline-optimal selection, the Morpheus/4S-like
approach, and mRTS.  The result carries the execution times (the bars) and
the three speedup series of mRTS over each competitor (the lines), plus the
summary statistics the paper quotes: average/maximum speedups and the
parity cases (RISPP at CG=0; Morpheus/4S at single-granularity combos).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.baselines import Morpheus4SPolicy, OfflineOptimalPolicy, RisppLikePolicy
from repro.baselines.riscmode import RiscModePolicy
from repro.core.mrts import MRTS
from repro.experiments.common import MatrixRunner, budget_grid, geometric_mean
from repro.experiments.engine import SweepEngine, resolve_engine
from repro.fabric.resources import ResourceBudget
from repro.util.tables import render_table

APPROACHES: Dict[str, Callable] = {
    "rispp": RisppLikePolicy,
    "offline-optimal": OfflineOptimalPolicy,
    "morpheus4s": Morpheus4SPolicy,
    "mrts": MRTS,
}


@dataclass
class Fig8Result:
    budgets: List[ResourceBudget]
    #: approach -> execution time (cycles) per budget, same order as budgets
    cycles: Dict[str, List[int]]
    risc_cycles: List[int]

    def speedup_series(self, versus: str) -> List[float]:
        """mRTS speedup over ``versus`` per combination (the Fig. 8 lines)."""
        return [
            v / m for v, m in zip(self.cycles[versus], self.cycles["mrts"])
        ]

    def average_speedup(self, versus: str, skip_trivial: bool = True) -> float:
        values = [
            s
            for s, b in zip(self.speedup_series(versus), self.budgets)
            if not (skip_trivial and b.n_prcs == 0 and b.n_cg_fabrics == 0)
        ]
        return geometric_mean(values)

    def max_speedup(self, versus: str) -> float:
        return max(self.speedup_series(versus))

    def parity_budgets(self, versus: str, tolerance: float = 0.05) -> List[str]:
        """Combination labels where mRTS and ``versus`` are within
        ``tolerance`` of each other."""
        return [
            b.label
            for s, b in zip(self.speedup_series(versus), self.budgets)
            if abs(s - 1.0) <= tolerance
        ]

    def render(self) -> str:
        headers = ["combo(CG,PRC)", "RISC"] + list(APPROACHES) + [
            "mRTS/rispp", "mRTS/offline", "mRTS/morpheus"
        ]
        rows = []
        for i, budget in enumerate(self.budgets):
            row = [budget.label, self.risc_cycles[i]]
            row += [self.cycles[name][i] for name in APPROACHES]
            row += [
                round(self.cycles["rispp"][i] / self.cycles["mrts"][i], 2),
                round(self.cycles["offline-optimal"][i] / self.cycles["mrts"][i], 2),
                round(self.cycles["morpheus4s"][i] / self.cycles["mrts"][i], 2),
            ]
            rows.append(row)
        table = render_table(
            headers, rows, title="Fig. 8: execution time (cycles) per fabric combination"
        )
        summary = []
        for versus, label in [
            ("rispp", "RISPP-like"),
            ("offline-optimal", "offline-optimal"),
            ("morpheus4s", "Morpheus+4S-like"),
        ]:
            summary.append(
                f"mRTS vs {label}: avg {self.average_speedup(versus):.2f}x, "
                f"max {self.max_speedup(versus):.2f}x, "
                f"parity at {self.parity_budgets(versus)}"
            )
        return table + "\n" + "\n".join(summary)


def run_fig8(
    frames: int = 16,
    seed: int = 7,
    max_cg: int = 4,
    max_prc: int = 3,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    backend=None,
    workers=None,
    coordinator=None,
    engine: SweepEngine = None,
) -> Fig8Result:
    """Reproduce Fig. 8 over the (CG 0..max_cg) x (PRC 0..max_prc) grid.

    ``jobs``/``use_cache``/``cache_dir`` (or a pre-built ``engine``) route
    the grid through the parallel cached sweep engine; the default stays
    serial in-process and produces identical numbers.
    """
    runner = MatrixRunner(
        frames=frames, seed=seed,
        engine=resolve_engine(engine, jobs, use_cache, cache_dir,
                              backend=backend, workers=workers,
                              coordinator=coordinator),
    )
    budgets = budget_grid(max_cg, max_prc)
    runner.prefetch(budgets, ["risc"] + list(APPROACHES))
    cycles: Dict[str, List[int]] = {name: [] for name in APPROACHES}
    risc: List[int] = []
    for budget in budgets:
        risc.append(runner.cycles(budget, RiscModePolicy))
        for name, factory in APPROACHES.items():
            cycles[name].append(runner.cycles(budget, factory))
    return Fig8Result(budgets=budgets, cycles=cycles, risc_cycles=risc)


__all__ = ["run_fig8", "Fig8Result", "APPROACHES"]
