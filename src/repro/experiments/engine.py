"""Parallel, cached execution engine for simulation sweeps.

The figure modules and :mod:`repro.experiments.sweep` all reduce to the
same shape of work: simulate many independent *cells* -- one (budget, seed,
policy, workload) combination each -- and aggregate the per-cell numbers.
This module turns that shape into infrastructure:

* **Declarative cells.**  A :class:`SweepCell` names its workload, policy
  and derived metrics through registries instead of carrying closures, so
  a cell can be pickled to a worker process, shipped over a socket as
  JSON, and hashed into a cache key.
* **Pluggable fan-out.**  :class:`SweepEngine` dispatches cells through a
  registered executor backend (:mod:`repro.experiments.backends`):
  ``serial`` runs in-process, ``pool`` fans out over a local process pool,
  ``distributed`` drives socket workers that can span hosts.  Every
  backend funnels into :func:`execute_cell`, so all of them are
  bit-identical to a serial run.
* **Construction memoisation.**  Applications are memoised per
  ``(workload, seed, workload_params)`` and compiled ISE libraries (with
  their precompiled ``instance_rows``/``footprint_index`` structures) per
  ``(workload, budget, workload_params, budget_params)``, so a fig8-style
  grid performs one application build per seed and one library compile per
  budget instead of one of each per cell.  The memoised objects are
  immutable after construction (frozen dataclasses, tuple candidate
  lists), which is what makes reuse byte-identical to rebuilding.
* **Content-addressed cache.**  Each cell's record is stored as JSON under
  ``.repro_cache/`` keyed by a stable hash of the cell *and* a structural
  fingerprint of the compile-time ISE library, so editing the library
  builder, the cost model or any cell parameter invalidates exactly the
  affected cells.  A sidecar ``index.json`` summarises record sizes and
  ages so :func:`cache_stats` does not stat every record on every call.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.baselines import (
    Morpheus4SPolicy,
    OfflineOptimalPolicy,
    OnlineOptimalPolicy,
    RiscModePolicy,
    RisppLikePolicy,
    TaskLevelPolicy,
)
from repro.config_env import DEFAULT_CACHE_DIR, cache_dir as resolve_cache_dir
from repro.core.mrts import MRTS
from repro.fabric.resources import ResourceBudget
from repro.sim.simulator import Simulator
from repro.util.validation import ReproError

#: Bump when the record layout or the simulation semantics change in a way
#: the library fingerprint cannot see; invalidates every cached record.
ENGINE_SCHEMA = 1

# ------------------------------------------------------------- registries

#: Every runnable policy, by the name used in cells, cache keys and the CLI.
POLICIES: Dict[str, Callable] = {
    "risc": RiscModePolicy,
    "mrts": MRTS,
    "rispp": RisppLikePolicy,
    "morpheus4s": Morpheus4SPolicy,
    "offline-optimal": OfflineOptimalPolicy,
    "online-optimal": OnlineOptimalPolicy,
    "task-level": TaskLevelPolicy,
}

#: Reverse map: registry factory -> name (for callers holding a factory).
_POLICY_NAMES: Dict[Callable, str] = {f: n for n, f in POLICIES.items()}


def register_policy(name: str, factory: Callable) -> None:
    """Register a policy factory for declarative cells.

    For parallel runs the registration must happen at import time of a
    module the workers also import (worker processes re-resolve the name).
    """
    POLICIES[name] = factory
    _POLICY_NAMES[factory] = name


def policy_name_of(factory: Callable) -> Optional[str]:
    """Registry name of ``factory``, or ``None`` if it is not registered."""
    return _POLICY_NAMES.get(factory)


@dataclass(frozen=True)
class WorkloadFamily:
    """A declarative workload: builds the application and its ISE library.

    ``application(seed, params)`` and ``library(budget, params)`` receive
    the cell's ``workload_params`` as a plain dict.
    """

    name: str
    application: Callable
    library: Callable


def _h264_application(seed, params):
    from repro.workloads.h264 import h264_application

    return h264_application(
        frames=params.get("frames", 8),
        seed=seed,
        scale=params.get("scale", 0.6),
    )


def _h264_library(budget, params):
    from repro.workloads.h264 import h264_library

    return h264_library(budget, cost_model=_cost_model_of(params))


def _cost_model_of(params):
    """The cost model a cell's ``workload_params`` ask for.

    The ``cost_model`` param is a tuple of ``(field, value)`` overrides on
    the default :class:`~repro.fabric.cost_model.TechnologyCostModel` --
    hashable, JSON-able, and part of the cache key, so perturbed-model cells
    (the sensitivity experiment) never collide with baseline records.
    """
    import dataclasses

    from repro.fabric.cost_model import DEFAULT_COST_MODEL

    overrides = dict(params.get("cost_model", ()))
    if not overrides:
        return DEFAULT_COST_MODEL
    return dataclasses.replace(DEFAULT_COST_MODEL, **overrides)


def _jpeg_application(seed, params):
    from repro.workloads.jpeg import jpeg_application

    return jpeg_application(
        images=params.get("images", 8),
        blocks_per_image=params.get("blocks_per_image", 300),
        seed=seed,
    )


def _jpeg_library(budget, params):
    from repro.workloads.jpeg import jpeg_library

    return jpeg_library(budget)


def _deblocking_application(seed, params):
    from repro.workloads.h264 import deblocking_application

    return deblocking_application(
        frames=params.get("frames", 8),
        seed=seed,
        scale=params.get("scale", 0.6),
    )


def _deblocking_library(budget, params):
    from repro.workloads.h264 import deblocking_library

    return deblocking_library(budget)


WORKLOADS: Dict[str, WorkloadFamily] = {
    "h264": WorkloadFamily("h264", _h264_application, _h264_library),
    "jpeg": WorkloadFamily("jpeg", _jpeg_application, _jpeg_library),
    "deblocking": WorkloadFamily(
        "deblocking", _deblocking_application, _deblocking_library
    ),
}


def register_workload(name: str, application: Callable, library: Callable) -> None:
    """Register a workload family (same import-time caveat as policies)."""
    WORKLOADS[name] = WorkloadFamily(name, application, library)


# ---------------------------------------------------------------- metrics


@dataclass(frozen=True)
class MetricSpec:
    """A derived per-cell measurement computed from the simulation result.

    ``compute(result, params)`` receives the cell's
    :class:`~repro.sim.simulator.SimulationResult` and the metric's params
    as a plain dict and must return JSON-able plain data (it enters the
    cached record).  ``needs_trace`` asks the simulator for a full
    execution trace (``collect_trace=True``) before the metric runs.
    """

    name: str
    compute: Callable
    needs_trace: bool = False


#: Every registered metric, by the name used in cells and cache keys.
METRICS: Dict[str, MetricSpec] = {}


def register_metric(name: str, compute: Callable, needs_trace: bool = False) -> None:
    """Register a derived metric (same import-time caveat as policies)."""
    METRICS[name] = MetricSpec(name=name, compute=compute, needs_trace=needs_trace)


def _metric_kernel_timeline(result, params):
    """Phase timeline of one kernel (the measured Fig. 5 staircase)."""
    from repro.analysis.timeline import kernel_timeline, timeline_payload

    timeline = kernel_timeline(
        result,
        str(params["kernel"]),
        block_window=params.get("block_window"),
    )
    return timeline_payload(timeline)


def _metric_deblock_frame_winners(result, params):
    """Per-frame execution counts + best case-study ISE (Fig. 2).

    Derived from the seeded video trace and the case-study profit model,
    not from the carrier simulation -- the cell only provides the cached,
    backend-routable execution context.
    """
    from repro.core.profit import pif
    from repro.workloads.h264.deblocking import deblocking_case_study
    from repro.workloads.h264.traces import deblock_executions_per_frame

    frames = int(params.get("frames", 16))
    seed = int(params.get("seed", 0))
    _, ises = deblocking_case_study()
    counts = deblock_executions_per_frame(frames=frames, seed=seed)

    def best_for(e: int) -> str:
        return max(
            ises,
            key=lambda name: pif(
                ises[name].latencies[0],
                ises[name].full_latency,
                ises[name].total_reconfig_cycles,
                e,
            ),
        )

    return {
        "executions_per_frame": list(counts),
        "best_ise_per_frame": [best_for(e) for e in counts],
    }


register_metric("kernel_timeline", _metric_kernel_timeline, needs_trace=True)
register_metric("deblock_frame_winners", _metric_deblock_frame_winners)


# ------------------------------------------------------------------ cells

Params = Union[None, Mapping[str, object], Tuple[Tuple[str, object], ...]]


def _freeze(value: object) -> object:
    """Recursively hashable form of a param value.

    Lists become tuples (a JSON round trip through a socket worker turns
    tuples into lists; freezing makes both hash and compare identically)
    and mappings become sorted key/value tuples.
    """
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _normalize_params(params: Params) -> Tuple[Tuple[str, object], ...]:
    if not params:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    return tuple(sorted((str(k), _freeze(v)) for k, v in items))


def _normalize_metrics(metrics) -> Tuple[Tuple[str, Tuple], ...]:
    if not metrics:
        return ()
    items = metrics.items() if isinstance(metrics, Mapping) else metrics
    return tuple(
        sorted((str(name), _normalize_params(params)) for name, params in items)
    )


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: (budget, seed, policy, workload).

    ``budget`` is ``(n_cg_fabrics, n_prcs)`` -- the order of the paper's
    combination labels ("21" = 2 CG fabrics, 1 PRC).  Params are stored as
    sorted key/value tuples so cells are hashable and canonical.
    """

    budget: Tuple[int, int]
    seed: int
    policy: str
    policy_params: Tuple[Tuple[str, object], ...] = ()
    workload: str = "h264"
    workload_params: Tuple[Tuple[str, object], ...] = ()
    #: extra :class:`ResourceBudget` kwargs (e.g. ``contexts_per_cg_fabric``)
    budget_params: Tuple[Tuple[str, object], ...] = ()
    #: derived measurements to attach to the record: sorted
    #: ``(metric_name, params)`` tuples resolving through :data:`METRICS`
    metrics: Tuple[Tuple[str, Tuple], ...] = ()

    @staticmethod
    def make(
        budget: Tuple[int, int],
        seed: int,
        policy: str,
        policy_params: Params = None,
        workload: str = "h264",
        workload_params: Params = None,
        budget_params: Params = None,
        metrics=None,
    ) -> "SweepCell":
        """Validated constructor (use this, not the raw dataclass)."""
        if policy not in POLICIES:
            raise ReproError(
                f"unknown policy {policy!r}; registered: {sorted(POLICIES)}"
            )
        if workload not in WORKLOADS:
            raise ReproError(
                f"unknown workload {workload!r}; registered: {sorted(WORKLOADS)}"
            )
        normalized_metrics = _normalize_metrics(metrics)
        unknown_metrics = sorted(
            name for name, _ in normalized_metrics if name not in METRICS
        )
        if unknown_metrics:
            raise ReproError(
                f"unknown metric(s) {unknown_metrics}; "
                f"registered: {sorted(METRICS)}"
            )
        cg, prc = budget
        return SweepCell(
            budget=(int(cg), int(prc)),
            seed=int(seed),
            policy=policy,
            policy_params=_normalize_params(policy_params),
            workload=workload,
            workload_params=_normalize_params(workload_params),
            budget_params=_normalize_params(budget_params),
            metrics=normalized_metrics,
        )

    @staticmethod
    def from_payload(payload: Mapping[str, object]) -> "SweepCell":
        """Rebuild a cell from :meth:`payload` output (e.g. off the wire).

        Round-trips exactly: ``SweepCell.from_payload(cell.payload())``
        equals ``cell``, including after a JSON encode/decode.
        """
        return SweepCell.make(
            budget=tuple(payload["budget"]),
            seed=payload["seed"],
            policy=payload["policy"],
            policy_params=[tuple(p) for p in payload.get("policy_params", ())],
            workload=payload.get("workload", "h264"),
            workload_params=[
                tuple(p) for p in payload.get("workload_params", ())
            ],
            budget_params=[tuple(p) for p in payload.get("budget_params", ())],
            metrics=[
                (name, [tuple(p) for p in params])
                for name, params in payload.get("metrics", ())
            ],
        )

    def resource_budget(self) -> ResourceBudget:
        cg, prc = self.budget
        return ResourceBudget(
            n_prcs=prc, n_cg_fabrics=cg, **dict(self.budget_params)
        )

    def payload(self) -> Dict[str, object]:
        """Canonical JSON-able description (the hashed part of the key)."""
        payload: Dict[str, object] = {
            "budget": list(self.budget),
            "seed": self.seed,
            "policy": self.policy,
            "policy_params": [list(p) for p in self.policy_params],
            "workload": self.workload,
            "workload_params": [list(p) for p in self.workload_params],
        }
        # Only non-default budget params / metrics enter the payload, so
        # every cache key minted before the fields existed stays valid.
        if self.budget_params:
            payload["budget_params"] = [list(p) for p in self.budget_params]
        if self.metrics:
            payload["metrics"] = [
                [name, [list(p) for p in params]] for name, params in self.metrics
            ]
        return payload


# ------------------------------------------------------- cache key / hash


def _stable_hash(payload: object) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _canonical(value: object) -> object:
    """Deep canonical plain-data form: dict keys sorted, tuples listified.

    Fresh records pass through this before they are returned or cached, so
    a record served from disk (written with ``sort_keys=True``) is
    byte-identical to a freshly computed one at every nesting level.
    """
    if isinstance(value, dict):
        return {key: _canonical(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


#: (workload, workload_params, budget) -> fingerprint, memoised per process.
_FINGERPRINTS: Dict[Tuple, str] = {}


def library_fingerprint(
    workload: str,
    budget: Tuple[int, int],
    workload_params: Params = None,
    budget_params: Params = None,
) -> str:
    """Structural hash of the compile-time ISE library a cell will see.

    Covers every latency, area and reconfiguration number that feeds the
    simulation, so changes to the ISE builder, the cost model or the data
    paths invalidate cached records without a manual version bump.
    ``budget_params`` matter because the fitting filter depends on the
    budget (e.g. ``contexts_per_cg_fabric``).
    """
    params = _normalize_params(workload_params)
    extra_budget = _normalize_params(budget_params)
    memo_key = (workload, params, tuple(budget), extra_budget)
    if memo_key in _FINGERPRINTS:
        return _FINGERPRINTS[memo_key]
    family = WORKLOADS[workload]
    cg, prc = budget
    resource_budget = ResourceBudget(
        n_prcs=prc, n_cg_fabrics=cg, **dict(extra_budget)
    )
    library = family.library(resource_budget, dict(params))
    description: List[object] = []
    for kernel_name in sorted(library.kernel_names()):
        kernel = library.kernel(kernel_name)
        monocg = library.monocg(kernel_name)
        candidates = sorted(
            [
                [
                    sorted(list(pair) for pair in ise.signature()),
                    list(ise.latencies),
                    list(ise.reconfig_schedule()),
                ]
                for ise in library.candidates(kernel_name)
            ],
            key=lambda entry: json.dumps(entry, sort_keys=True),
        )
        description.append(
            [kernel_name, kernel.risc_latency, monocg.latency, candidates]
        )
    fingerprint = _stable_hash(description)
    _FINGERPRINTS[memo_key] = fingerprint
    return fingerprint


def cell_key(cell: SweepCell) -> str:
    """Content address of ``cell``: cell description + library fingerprint."""
    return _stable_hash(
        {
            "schema": ENGINE_SCHEMA,
            "cell": cell.payload(),
            "library": library_fingerprint(
                cell.workload, cell.budget, cell.workload_params, cell.budget_params
            ),
        }
    )


# ------------------------------------------------------ cache maintenance

#: Sidecar stats index at the cache root; bump on layout changes.
INDEX_SCHEMA = 1
_INDEX_NAME = "index.json"


def _cache_files(cache_dir: Union[str, Path]) -> List[Path]:
    root = Path(cache_dir)
    if not root.is_dir():
        return []
    return [p for p in root.glob("*/*.json") if p.is_file()]


def _index_path(root: Union[str, Path]) -> Path:
    return Path(root) / _INDEX_NAME


def _load_index(root: Union[str, Path]) -> Optional[Dict[str, List[float]]]:
    """The sidecar entries (``key -> [size, mtime]``), or ``None``."""
    try:
        with open(_index_path(root), "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("schema") != INDEX_SCHEMA:
        return None
    entries = data.get("entries")
    if not isinstance(entries, dict):
        return None
    return entries


def _write_index(root: Union[str, Path], entries: Dict[str, List[float]]) -> None:
    """Atomically publish the sidecar index (best effort: the index is an
    optimisation, so an unwritable cache dir never fails the caller)."""
    root = Path(root)
    if not root.is_dir():
        return
    tmp = None
    try:
        fd, tmp = tempfile.mkstemp(dir=str(root), suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(
                {"schema": INDEX_SCHEMA, "entries": entries},
                handle,
                sort_keys=True,
            )
        os.replace(tmp, _index_path(root))
    except OSError:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def _scan_entries(root: Union[str, Path]) -> Dict[str, List[float]]:
    """Full-scan fallback: stat every record (the O(N) path the index avoids)."""
    entries: Dict[str, List[float]] = {}
    for path in _cache_files(root):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries[path.stem] = [stat.st_size, stat.st_mtime]
    return entries


def _index_fresh(root: Union[str, Path], index_mtime: float) -> bool:
    """Whether the sidecar still reflects the record tree.

    Any record write, eviction or externally planted file bumps its shard
    directory's mtime past the index's, which is what we check -- one stat
    per shard (<= 256) instead of one per record.
    """
    root = Path(root)
    try:
        children = sorted(root.iterdir())
    except OSError:
        return False
    for child in children:
        if not child.is_dir():
            continue
        try:
            if child.stat().st_mtime > index_mtime:
                return False
        except OSError:
            return False
    return True


def _index_apply(
    root: Union[str, Path],
    updates: Dict[str, List[float]],
    removed: Sequence[str] = (),
) -> None:
    """Fold written/touched/evicted keys into the sidecar index.

    When no index exists yet the record tree is scanned once to seed it --
    after that, engine runs and evictions keep it incremental.
    """
    root = Path(root)
    entries = _load_index(root)
    if entries is None:
        entries = _scan_entries(root)
        if not entries:
            return
    else:
        entries.update(updates)
        for key in sorted(removed):
            entries.pop(key, None)
    _write_index(root, entries)


def cache_stats(cache_dir: Union[str, Path, None] = None) -> Dict[str, object]:
    """Size report of the on-disk sweep cell cache.

    Served from the sidecar ``index.json`` when it is present and no shard
    directory changed after it was written; otherwise every record is
    statted once and the index rebuilt for the next call.  The extra
    ``source`` key reports which path answered (``"index"`` / ``"scan"``).
    """
    root = Path(resolve_cache_dir(cache_dir if cache_dir is None else str(cache_dir)))
    entries: Optional[Dict[str, List[float]]] = None
    source = "scan"
    try:
        index_mtime = _index_path(root).stat().st_mtime
    except OSError:
        index_mtime = None
    if index_mtime is not None:
        loaded = _load_index(root)
        if loaded is not None and _index_fresh(root, index_mtime):
            entries = loaded
            source = "index"
    if entries is None:
        entries = _scan_entries(root)
        if entries:
            _write_index(root, entries)
    sizes: List[int] = []
    oldest: Optional[float] = None
    newest: Optional[float] = None
    for key in sorted(entries):
        size, mtime = entries[key][0], entries[key][1]
        sizes.append(int(size))
        oldest = mtime if oldest is None else min(oldest, mtime)
        newest = mtime if newest is None else max(newest, mtime)
    return {
        "cache_dir": str(root),
        "records": len(sizes),
        "total_bytes": sum(sizes),
        "oldest_mtime": oldest,
        "newest_mtime": newest,
        "source": source,
    }


def clear_cache(cache_dir: Union[str, Path, None] = None) -> int:
    """Delete every cached record; returns how many were removed."""
    root = Path(resolve_cache_dir(cache_dir if cache_dir is None else str(cache_dir)))
    removed = 0
    for path in _cache_files(root):
        try:
            path.unlink()
            removed += 1
        except OSError:
            continue
    for shard in root.glob("*"):
        if shard.is_dir():
            try:
                shard.rmdir()
            except OSError:
                pass
    try:
        _index_path(root).unlink()
    except OSError:
        pass
    return removed


def evict_cache(
    cache_dir: Union[str, Path, None] = None,
    max_bytes: int = 0,
) -> Dict[str, int]:
    """Shrink the cache to ``max_bytes`` by deleting least-recently-used
    records (mtime order; cache hits touch their record's mtime, so reads
    count as use).  Returns ``{"evicted": n, "freed_bytes": b}``.
    """
    if max_bytes < 0:
        raise ReproError(f"max_bytes must be >= 0, got {max_bytes}")
    root = Path(resolve_cache_dir(cache_dir if cache_dir is None else str(cache_dir)))
    entries = []
    total = 0
    for path in _cache_files(root):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, str(path), path, stat.st_size))
        total += stat.st_size
    evicted = freed = 0
    removed_keys: List[str] = []
    # Oldest first; the path string breaks mtime ties deterministically.
    entries.sort()
    for _, _, path, size in entries:
        if total <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        freed += size
        evicted += 1
        removed_keys.append(path.stem)
    if removed_keys or _load_index(root) is not None:
        _index_apply(root, {}, removed_keys)
    return {"evicted": evicted, "freed_bytes": freed}


# ----------------------------------------------------------- cell workers

#: Simulations actually executed in this process (cache-hit tests read it).
SIMULATIONS_RUN = 0

#: LRU capacity of the per-process application / library memos.  Sized to
#: cover a whole fig8-grid sweep (one library per budget) without letting
#: long multi-workload sessions pin unbounded memory.
APP_MEMO_CAPACITY = 8
LIBRARY_MEMO_CAPACITY = 32

_APP_MEMO: "OrderedDict[Tuple, object]" = OrderedDict()
_LIB_MEMO: "OrderedDict[Tuple, object]" = OrderedDict()

#: Construction-counter names, in reporting order.
BUILD_COUNTER_NAMES: Tuple[str, ...] = (
    "applications_built",
    "applications_saved",
    "libraries_built",
    "libraries_saved",
)

#: How many applications / libraries this process built vs. reused.  The
#: backends snapshot deltas around each batch and ship them home, so
#: :class:`EngineStats` sees worker-side savings too.
BUILD_COUNTERS: Dict[str, int] = {name: 0 for name in BUILD_COUNTER_NAMES}


def clear_build_memo() -> None:
    """Drop the per-process construction memos and zero the counters
    (benchmarks use this to measure cold builds)."""
    _APP_MEMO.clear()
    _LIB_MEMO.clear()
    for name in BUILD_COUNTER_NAMES:
        BUILD_COUNTERS[name] = 0


def _memo_get(
    memo: "OrderedDict[Tuple, object]",
    key: Tuple,
    build: Callable[[], object],
    built: str,
    saved: str,
    capacity: int,
) -> object:
    if key in memo:
        memo.move_to_end(key)
        BUILD_COUNTERS[saved] += 1
        return memo[key]
    value = build()
    BUILD_COUNTERS[built] += 1
    memo[key] = value
    while len(memo) > capacity:
        memo.popitem(last=False)
    return value


def _application_of(cell: SweepCell):
    """The cell's application, memoised per (workload, seed, params)."""
    family = WORKLOADS[cell.workload]
    return _memo_get(
        _APP_MEMO,
        (cell.workload, cell.seed, cell.workload_params),
        lambda: family.application(cell.seed, dict(cell.workload_params)),
        "applications_built",
        "applications_saved",
        APP_MEMO_CAPACITY,
    )


def _library_of(cell: SweepCell, budget: ResourceBudget):
    """The cell's compiled ISE library, memoised per (workload, budget,
    params) -- reuse keeps the precompiled ``instance_rows`` /
    ``footprint_index`` structures warm across cells."""
    family = WORKLOADS[cell.workload]
    return _memo_get(
        _LIB_MEMO,
        (cell.workload, cell.budget, cell.workload_params, cell.budget_params),
        lambda: family.library(budget, dict(cell.workload_params)),
        "libraries_built",
        "libraries_saved",
        LIBRARY_MEMO_CAPACITY,
    )


def execute_cell(cell: SweepCell) -> Dict[str, object]:
    """Simulate one cell and return its plain-data record.

    This is the single execution path of the engine: the serial loop and
    every pool or socket worker calls exactly this function, which is what
    makes all backends bit-identical.  The application and library come
    from the per-process memos; both are immutable after construction, so
    reuse cannot change a record.
    """
    global SIMULATIONS_RUN
    budget = cell.resource_budget()
    application = _application_of(cell)
    library = _library_of(cell, budget)
    policy = POLICIES[cell.policy](**dict(cell.policy_params))
    needs_trace = any(METRICS[name].needs_trace for name, _ in cell.metrics)
    result = Simulator(
        application, library, budget, policy, collect_trace=needs_trace
    ).run()
    SIMULATIONS_RUN += 1
    stats = result.stats
    record: Dict[str, object] = {
        "budget_label": budget.label,
        "seed": cell.seed,
        "policy": cell.policy,
        "workload": cell.workload,
        "total_cycles": stats.total_cycles,
        "kernel_cycles": stats.kernel_cycles,
        "gap_cycles": stats.gap_cycles,
        "overhead_cycles_charged": stats.overhead_cycles_charged,
        "overhead_cycles_full": stats.overhead_cycles_full,
        "accelerated_fraction": stats.accelerated_fraction(),
        "reconfigurations": stats.reconfigurations,
        "selections": stats.selections,
        "executions_by_mode": dict(sorted(stats.executions_by_mode.items())),
    }
    if cell.metrics:
        record["metrics"] = {
            name: _canonical(METRICS[name].compute(result, dict(params)))
            for name, params in cell.metrics
        }
    return record


def execute_batch(
    cells: Sequence[SweepCell],
) -> Tuple[List[Dict[str, object]], Dict[str, int]]:
    """Execute a chunk of cells in this process.

    The unit of work every backend dispatches (one IPC frame carries one
    batch).  Returns the records plus the construction-counter delta the
    batch caused, so worker-side memo savings flow back to the coordinator.
    Calls ``execute_cell`` through the module global, keeping test
    monkeypatches of the single-cell path effective.
    """
    before = dict(BUILD_COUNTERS)
    records = [execute_cell(cell) for cell in cells]
    built = {
        name: BUILD_COUNTERS[name] - before[name] for name in BUILD_COUNTER_NAMES
    }
    return records, built


# ----------------------------------------------------------------- engine


@dataclass
class EngineStats:
    """What one :meth:`SweepEngine.run` call did.

    The construction and transport counters (``builds_saved`` and friends)
    are implementation observability, surfaced through
    :meth:`engine_payload` and -- like the selector and sim engine
    counters -- deliberately kept out of golden record payloads.
    """

    cells: int = 0               #: cells requested (incl. duplicates)
    unique_cells: int = 0        #: distinct cache keys among them
    cache_hits: int = 0          #: unique cells served from disk
    executed: int = 0            #: unique cells actually simulated
    applications_built: int = 0  #: applications constructed across workers
    libraries_built: int = 0     #: ISE libraries compiled across workers
    builds_saved: int = 0        #: constructions avoided by the memos
    frames_sent: int = 0         #: IPC frames dispatched (0 for serial)
    worker_restarts: int = 0     #: dead distributed workers replaced
    remote_cache_hits: int = 0   #: cells served by the service's shared store/fleet
    jobs_completed: int = 0      #: service jobs finished on our behalf
    bytes_sent: int = 0          #: transport bytes written to sockets
    bytes_received: int = 0      #: transport bytes read from sockets
    frames_coalesced: int = 0    #: per-cell frames avoided by wire batching
    blocks_compressed: int = 0   #: binary frames the adaptive codec deflated

    def reset(self) -> None:
        self.cells = self.unique_cells = self.cache_hits = self.executed = 0
        self.applications_built = self.libraries_built = 0
        self.builds_saved = self.frames_sent = self.worker_restarts = 0
        self.remote_cache_hits = self.jobs_completed = 0
        self.bytes_sent = self.bytes_received = 0
        self.frames_coalesced = self.blocks_compressed = 0

    def engine_payload(self) -> Dict[str, object]:
        """The sweep-engine counters as a JSON-able dict -- never merged
        into cell records, so golden payloads stay backend-independent."""
        return {
            "cells": self.cells,
            "unique_cells": self.unique_cells,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "applications_built": self.applications_built,
            "libraries_built": self.libraries_built,
            "builds_saved": self.builds_saved,
            "frames_sent": self.frames_sent,
            "worker_restarts": self.worker_restarts,
            "remote_cache_hits": self.remote_cache_hits,
            "jobs_completed": self.jobs_completed,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "frames_coalesced": self.frames_coalesced,
            "blocks_compressed": self.blocks_compressed,
        }


class SweepEngine:
    """Runs sweep cells -- parallel, cached, deterministically ordered.

    Parameters
    ----------
    jobs:
        Worker processes for the auto-selected backend.  ``1`` (the
        default) runs in-process; results are identical either way.
    cache_dir / use_cache:
        Where cell records live and whether to consult them.  The cache is
        content-addressed: stale entries are never *read* (their key no
        longer matches), only overwritten or left to garbage-collect.
    chunk_size:
        Cells per dispatched batch; defaults to a few batches per worker
        so stragglers do not serialise the tail.  Batches never span
        library fingerprints, so each one is a single-compile unit of work.
    cache_max_bytes:
        Byte budget for the on-disk cache.  After every :meth:`run` the
        cache is shrunk to this size by evicting least-recently-used
        records (``None`` disables eviction).
    backend:
        Executor backend name (see :mod:`repro.experiments.backends`).
        ``None`` selects ``"pool"`` when ``jobs > 1``, else ``"serial"``.
    workers / coordinator:
        Distributed-backend knobs: how many local socket workers to spawn
        and the ``host:port`` to bind the coordinator on (``None`` binds an
        ephemeral loopback port).  Ignored by the other backends.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Union[str, Path, None] = None,
        use_cache: bool = True,
        chunk_size: Optional[int] = None,
        cache_max_bytes: Optional[int] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        coordinator: Optional[str] = None,
    ):
        if jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {jobs}")
        if cache_max_bytes is not None and cache_max_bytes < 0:
            raise ReproError(
                f"cache_max_bytes must be >= 0, got {cache_max_bytes}"
            )
        if workers is not None and workers < 0:
            # 0 is coordinator-only mode (external workers join); the
            # distributed backend validates it against the address.
            raise ReproError(f"workers must be >= 0, got {workers}")
        if backend is not None:
            from repro.experiments.backends import BACKENDS

            if backend not in BACKENDS:
                raise ReproError(
                    f"unknown backend {backend!r}; "
                    f"registered: {sorted(BACKENDS)}"
                )
        self.jobs = jobs
        self.cache_dir = Path(
            resolve_cache_dir(cache_dir if cache_dir is None else str(cache_dir))
        )
        self.use_cache = use_cache
        self.chunk_size = chunk_size
        self.cache_max_bytes = cache_max_bytes
        self.backend = backend
        self.workers = workers
        self.coordinator = coordinator
        self.stats = EngineStats()

    # ------------------------------------------------------------- cache
    def _record_path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.json"

    def _read_record(self, key: str) -> Optional[Dict[str, object]]:
        path = self._record_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except (OSError, ValueError):
            return None
        if envelope.get("schema") != ENGINE_SCHEMA or envelope.get("key") != key:
            return None
        record = envelope.get("record")
        if isinstance(record, dict):
            # A hit counts as use: bump the mtime so LRU eviction keeps the
            # records sweeps actually reach for.
            try:
                os.utime(path)
            except OSError:
                pass
            return record
        return None

    def _write_record(self, key: str, cell: SweepCell, record: Dict[str, object]) -> None:
        path = self._record_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "schema": ENGINE_SCHEMA,
            "key": key,
            "cell": cell.payload(),
            "record": record,
        }
        # Atomic publish: a crashed/parallel writer never leaves a torn file.
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _stat_entry(self, key: str) -> Optional[List[float]]:
        try:
            stat = self._record_path(key).stat()
        except OSError:
            return None
        return [stat.st_size, stat.st_mtime]

    # --------------------------------------------------------------- run
    def run(self, cells: Sequence[SweepCell]) -> List[Dict[str, object]]:
        """Execute ``cells``; returns one record per cell, in input order.

        Duplicate cells are simulated once and share the record.
        """
        self.stats.reset()
        self.stats.cells = len(cells)
        keys = [cell_key(cell) for cell in cells]
        by_key: Dict[str, SweepCell] = {}
        for cell, key in zip(cells, keys):
            by_key.setdefault(key, cell)
        self.stats.unique_cells = len(by_key)

        records: Dict[str, Dict[str, object]] = {}
        index_updates: Dict[str, List[float]] = {}
        if self.use_cache:
            for key in by_key:
                cached = self._read_record(key)
                if cached is not None:
                    records[key] = cached
                    entry = self._stat_entry(key)
                    if entry is not None:
                        index_updates[key] = entry
            self.stats.cache_hits = len(records)

        missing = [(key, cell) for key, cell in by_key.items() if key not in records]
        fresh = self._execute_missing(missing)
        for (key, cell), record in zip(missing, fresh):
            records[key] = record
            if self.use_cache:
                self._write_record(key, cell, record)
                entry = self._stat_entry(key)
                if entry is not None:
                    index_updates[key] = entry
        self.stats.executed = len(missing)
        if self.use_cache and index_updates:
            _index_apply(self.cache_dir, index_updates)
        if self.use_cache and self.cache_max_bytes is not None:
            evict_cache(self.cache_dir, self.cache_max_bytes)
        # Canonical form at every nesting level, so fresh and cache-served
        # records serialise byte-identically (cached JSON comes back sorted).
        return [_canonical(records[key]) for key in keys]

    def run_streamed(
        self,
        cells: Sequence[SweepCell],
        sink: Callable[[int, SweepCell, Dict[str, object]], None],
    ) -> int:
        """Execute ``cells``, delivering each record through ``sink``.

        ``sink(index, cell, record)`` is called exactly once per input
        cell (duplicates included, sharing one simulation) with the same
        canonical record :meth:`run` would return at that index — but no
        record list is ever built, so sweep memory stays bounded by the
        sink's own buffering (e.g. ``ResultWriter``'s shard buffer).
        Delivery order is cache hits first, then executed cells as the
        backend completes them; the index is the caller's key back into
        submission order.  Returns the number of records delivered.
        """
        self.stats.reset()
        self.stats.cells = len(cells)
        keys = [cell_key(cell) for cell in cells]
        by_key: Dict[str, SweepCell] = {}
        indices: Dict[str, List[int]] = {}
        for index, (cell, key) in enumerate(zip(cells, keys)):
            by_key.setdefault(key, cell)
            indices.setdefault(key, []).append(index)
        self.stats.unique_cells = len(by_key)

        delivered = [0]

        def deliver(key: str, record: Dict[str, object]) -> None:
            canonical = _canonical(record)
            for index in indices[key]:
                sink(index, by_key[key], canonical)
                delivered[0] += 1

        served: Dict[str, bool] = {}
        index_updates: Dict[str, List[float]] = {}
        if self.use_cache:
            for key in by_key:
                cached = self._read_record(key)
                if cached is not None:
                    served[key] = True
                    entry = self._stat_entry(key)
                    if entry is not None:
                        index_updates[key] = entry
                    deliver(key, cached)
            self.stats.cache_hits = len(served)

        missing = [(key, cell) for key, cell in by_key.items() if key not in served]

        def on_record(position: int, record: Dict[str, object]) -> None:
            key, cell = missing[position]
            if self.use_cache:
                self._write_record(key, cell, record)
                entry = self._stat_entry(key)
                if entry is not None:
                    index_updates[key] = entry
            deliver(key, record)

        self._execute_missing(missing, on_record=on_record)
        self.stats.executed = len(missing)
        if self.use_cache and index_updates:
            _index_apply(self.cache_dir, index_updates)
        if self.use_cache and self.cache_max_bytes is not None:
            evict_cache(self.cache_dir, self.cache_max_bytes)
        return delivered[0]

    def _execute_missing(
        self,
        missing: Sequence[Tuple[str, SweepCell]],
        on_record: Optional[Callable[[int, Dict[str, object]], None]] = None,
    ) -> Optional[List[Dict[str, object]]]:
        cells = [cell for _, cell in missing]
        if not cells:
            return []
        from repro.experiments.backends import resolve_backend

        backend = resolve_backend(
            self.backend,
            jobs=self.jobs,
            chunk_size=self.chunk_size,
            workers=self.workers,
            coordinator=self.coordinator,
        )
        records = backend.run(cells, on_record=on_record)
        counters = backend.counters
        self.stats.applications_built += counters["applications_built"]
        self.stats.libraries_built += counters["libraries_built"]
        self.stats.builds_saved += (
            counters["applications_saved"] + counters["libraries_saved"]
        )
        self.stats.frames_sent += counters["frames_sent"]
        self.stats.worker_restarts += counters["worker_restarts"]
        self.stats.remote_cache_hits += counters["remote_cache_hits"]
        self.stats.jobs_completed += counters["jobs_completed"]
        self.stats.bytes_sent += counters["bytes_sent"]
        self.stats.bytes_received += counters["bytes_received"]
        self.stats.frames_coalesced += counters["frames_coalesced"]
        self.stats.blocks_compressed += counters["blocks_compressed"]
        return records


def resolve_engine(
    engine: Optional[SweepEngine] = None,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: Union[str, Path, None] = None,
    cache_max_bytes: Optional[int] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    coordinator: Optional[str] = None,
) -> Optional[SweepEngine]:
    """Engine for the experiment entry points' convenience flags.

    Returns ``engine`` when given; otherwise builds one from the flags, or
    returns ``None`` when the flags ask for nothing beyond the classic
    serial in-process path (so default calls stay dependency-free).
    """
    if engine is not None:
        return engine
    if (
        jobs == 1
        and not use_cache
        and cache_dir is None
        and cache_max_bytes is None
        and backend is None
        and workers is None
        and coordinator is None
    ):
        return None
    return SweepEngine(
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        cache_max_bytes=cache_max_bytes,
        backend=backend,
        workers=workers,
        coordinator=coordinator,
    )


__all__ = [
    "APP_MEMO_CAPACITY",
    "BUILD_COUNTERS",
    "BUILD_COUNTER_NAMES",
    "DEFAULT_CACHE_DIR",
    "ENGINE_SCHEMA",
    "EngineStats",
    "INDEX_SCHEMA",
    "LIBRARY_MEMO_CAPACITY",
    "METRICS",
    "MetricSpec",
    "POLICIES",
    "SweepCell",
    "SweepEngine",
    "WORKLOADS",
    "WorkloadFamily",
    "cache_stats",
    "cell_key",
    "clear_build_memo",
    "clear_cache",
    "evict_cache",
    "execute_batch",
    "execute_cell",
    "library_fingerprint",
    "policy_name_of",
    "register_metric",
    "register_policy",
    "register_workload",
    "resolve_engine",
]
