"""Parallel, cached execution engine for simulation sweeps.

The figure modules and :mod:`repro.experiments.sweep` all reduce to the
same shape of work: simulate many independent *cells* -- one (budget, seed,
policy, workload) combination each -- and aggregate the per-cell numbers.
This module turns that shape into infrastructure:

* **Declarative cells.**  A :class:`SweepCell` names its workload and
  policy through registries instead of carrying closures, so a cell can be
  pickled to a worker process and hashed into a cache key.
* **Parallel fan-out.**  :class:`SweepEngine` dispatches cells over a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs`` workers, chunked
  ``map``) and collects results in submission order, so a parallel run is
  bit-identical to a serial one -- both call :func:`execute_cell`.
* **Content-addressed cache.**  Each cell's record is stored as JSON under
  ``.repro_cache/`` keyed by a stable hash of the cell *and* a structural
  fingerprint of the compile-time ISE library, so editing the library
  builder, the cost model or any cell parameter invalidates exactly the
  affected cells.

The engine is the scaling foundation: sharding and multi-backend dispatch
plug in behind :meth:`SweepEngine.run` without touching the experiment
modules again.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.baselines import (
    Morpheus4SPolicy,
    OfflineOptimalPolicy,
    OnlineOptimalPolicy,
    RiscModePolicy,
    RisppLikePolicy,
    TaskLevelPolicy,
)
from repro.config_env import DEFAULT_CACHE_DIR, cache_dir as resolve_cache_dir
from repro.core.mrts import MRTS
from repro.fabric.resources import ResourceBudget
from repro.sim.simulator import Simulator
from repro.util.validation import ReproError

#: Bump when the record layout or the simulation semantics change in a way
#: the library fingerprint cannot see; invalidates every cached record.
ENGINE_SCHEMA = 1

# ------------------------------------------------------------- registries

#: Every runnable policy, by the name used in cells, cache keys and the CLI.
POLICIES: Dict[str, Callable] = {
    "risc": RiscModePolicy,
    "mrts": MRTS,
    "rispp": RisppLikePolicy,
    "morpheus4s": Morpheus4SPolicy,
    "offline-optimal": OfflineOptimalPolicy,
    "online-optimal": OnlineOptimalPolicy,
    "task-level": TaskLevelPolicy,
}

#: Reverse map: registry factory -> name (for callers holding a factory).
_POLICY_NAMES: Dict[Callable, str] = {f: n for n, f in POLICIES.items()}


def register_policy(name: str, factory: Callable) -> None:
    """Register a policy factory for declarative cells.

    For parallel runs the registration must happen at import time of a
    module the workers also import (worker processes re-resolve the name).
    """
    POLICIES[name] = factory
    _POLICY_NAMES[factory] = name


def policy_name_of(factory: Callable) -> Optional[str]:
    """Registry name of ``factory``, or ``None`` if it is not registered."""
    return _POLICY_NAMES.get(factory)


@dataclass(frozen=True)
class WorkloadFamily:
    """A declarative workload: builds the application and its ISE library.

    ``application(seed, params)`` and ``library(budget, params)`` receive
    the cell's ``workload_params`` as a plain dict.
    """

    name: str
    application: Callable
    library: Callable


def _h264_application(seed, params):
    from repro.workloads.h264 import h264_application

    return h264_application(
        frames=params.get("frames", 8),
        seed=seed,
        scale=params.get("scale", 0.6),
    )


def _h264_library(budget, params):
    from repro.workloads.h264 import h264_library

    return h264_library(budget, cost_model=_cost_model_of(params))


def _cost_model_of(params):
    """The cost model a cell's ``workload_params`` ask for.

    The ``cost_model`` param is a tuple of ``(field, value)`` overrides on
    the default :class:`~repro.fabric.cost_model.TechnologyCostModel` --
    hashable, JSON-able, and part of the cache key, so perturbed-model cells
    (the sensitivity experiment) never collide with baseline records.
    """
    import dataclasses

    from repro.fabric.cost_model import DEFAULT_COST_MODEL

    overrides = dict(params.get("cost_model", ()))
    if not overrides:
        return DEFAULT_COST_MODEL
    return dataclasses.replace(DEFAULT_COST_MODEL, **overrides)


def _jpeg_application(seed, params):
    from repro.workloads.jpeg import jpeg_application

    return jpeg_application(
        images=params.get("images", 8),
        blocks_per_image=params.get("blocks_per_image", 300),
        seed=seed,
    )


def _jpeg_library(budget, params):
    from repro.workloads.jpeg import jpeg_library

    return jpeg_library(budget)


def _deblocking_application(seed, params):
    from repro.workloads.h264 import deblocking_application

    return deblocking_application(
        frames=params.get("frames", 8),
        seed=seed,
        scale=params.get("scale", 0.6),
    )


def _deblocking_library(budget, params):
    from repro.workloads.h264 import deblocking_library

    return deblocking_library(budget)


WORKLOADS: Dict[str, WorkloadFamily] = {
    "h264": WorkloadFamily("h264", _h264_application, _h264_library),
    "jpeg": WorkloadFamily("jpeg", _jpeg_application, _jpeg_library),
    "deblocking": WorkloadFamily(
        "deblocking", _deblocking_application, _deblocking_library
    ),
}


def register_workload(name: str, application: Callable, library: Callable) -> None:
    """Register a workload family (same import-time caveat as policies)."""
    WORKLOADS[name] = WorkloadFamily(name, application, library)


# ------------------------------------------------------------------ cells

Params = Union[None, Mapping[str, object], Tuple[Tuple[str, object], ...]]


def _normalize_params(params: Params) -> Tuple[Tuple[str, object], ...]:
    if not params:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: (budget, seed, policy, workload).

    ``budget`` is ``(n_cg_fabrics, n_prcs)`` -- the order of the paper's
    combination labels ("21" = 2 CG fabrics, 1 PRC).  Params are stored as
    sorted key/value tuples so cells are hashable and canonical.
    """

    budget: Tuple[int, int]
    seed: int
    policy: str
    policy_params: Tuple[Tuple[str, object], ...] = ()
    workload: str = "h264"
    workload_params: Tuple[Tuple[str, object], ...] = ()
    #: extra :class:`ResourceBudget` kwargs (e.g. ``contexts_per_cg_fabric``)
    budget_params: Tuple[Tuple[str, object], ...] = ()

    @staticmethod
    def make(
        budget: Tuple[int, int],
        seed: int,
        policy: str,
        policy_params: Params = None,
        workload: str = "h264",
        workload_params: Params = None,
        budget_params: Params = None,
    ) -> "SweepCell":
        """Validated constructor (use this, not the raw dataclass)."""
        if policy not in POLICIES:
            raise ReproError(
                f"unknown policy {policy!r}; registered: {sorted(POLICIES)}"
            )
        if workload not in WORKLOADS:
            raise ReproError(
                f"unknown workload {workload!r}; registered: {sorted(WORKLOADS)}"
            )
        cg, prc = budget
        return SweepCell(
            budget=(int(cg), int(prc)),
            seed=int(seed),
            policy=policy,
            policy_params=_normalize_params(policy_params),
            workload=workload,
            workload_params=_normalize_params(workload_params),
            budget_params=_normalize_params(budget_params),
        )

    def resource_budget(self) -> ResourceBudget:
        cg, prc = self.budget
        return ResourceBudget(
            n_prcs=prc, n_cg_fabrics=cg, **dict(self.budget_params)
        )

    def payload(self) -> Dict[str, object]:
        """Canonical JSON-able description (the hashed part of the key)."""
        payload: Dict[str, object] = {
            "budget": list(self.budget),
            "seed": self.seed,
            "policy": self.policy,
            "policy_params": [list(p) for p in self.policy_params],
            "workload": self.workload,
            "workload_params": [list(p) for p in self.workload_params],
        }
        # Only non-default budget params enter the payload, so every cache
        # key minted before the field existed stays valid.
        if self.budget_params:
            payload["budget_params"] = [list(p) for p in self.budget_params]
        return payload


# ------------------------------------------------------- cache key / hash


def _stable_hash(payload: object) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: (workload, workload_params, budget) -> fingerprint, memoised per process.
_FINGERPRINTS: Dict[Tuple, str] = {}


def library_fingerprint(
    workload: str,
    budget: Tuple[int, int],
    workload_params: Params = None,
    budget_params: Params = None,
) -> str:
    """Structural hash of the compile-time ISE library a cell will see.

    Covers every latency, area and reconfiguration number that feeds the
    simulation, so changes to the ISE builder, the cost model or the data
    paths invalidate cached records without a manual version bump.
    ``budget_params`` matter because the fitting filter depends on the
    budget (e.g. ``contexts_per_cg_fabric``).
    """
    params = _normalize_params(workload_params)
    extra_budget = _normalize_params(budget_params)
    memo_key = (workload, params, tuple(budget), extra_budget)
    if memo_key in _FINGERPRINTS:
        return _FINGERPRINTS[memo_key]
    family = WORKLOADS[workload]
    cg, prc = budget
    resource_budget = ResourceBudget(
        n_prcs=prc, n_cg_fabrics=cg, **dict(extra_budget)
    )
    library = family.library(resource_budget, dict(params))
    description: List[object] = []
    for kernel_name in sorted(library.kernel_names()):
        kernel = library.kernel(kernel_name)
        monocg = library.monocg(kernel_name)
        candidates = sorted(
            [
                [
                    sorted(list(pair) for pair in ise.signature()),
                    list(ise.latencies),
                    list(ise.reconfig_schedule()),
                ]
                for ise in library.candidates(kernel_name)
            ],
            key=lambda entry: json.dumps(entry, sort_keys=True),
        )
        description.append(
            [kernel_name, kernel.risc_latency, monocg.latency, candidates]
        )
    fingerprint = _stable_hash(description)
    _FINGERPRINTS[memo_key] = fingerprint
    return fingerprint


def cell_key(cell: SweepCell) -> str:
    """Content address of ``cell``: cell description + library fingerprint."""
    return _stable_hash(
        {
            "schema": ENGINE_SCHEMA,
            "cell": cell.payload(),
            "library": library_fingerprint(
                cell.workload, cell.budget, cell.workload_params, cell.budget_params
            ),
        }
    )


# ------------------------------------------------------ cache maintenance


def _cache_files(cache_dir: Union[str, Path]) -> List[Path]:
    root = Path(cache_dir)
    if not root.is_dir():
        return []
    return [p for p in root.glob("*/*.json") if p.is_file()]


def cache_stats(cache_dir: Union[str, Path, None] = None) -> Dict[str, object]:
    """Size report of the on-disk sweep cell cache."""
    root = Path(resolve_cache_dir(cache_dir if cache_dir is None else str(cache_dir)))
    files = _cache_files(root)
    sizes = []
    oldest: Optional[float] = None
    newest: Optional[float] = None
    for path in files:
        try:
            stat = path.stat()
        except OSError:
            continue
        sizes.append(stat.st_size)
        oldest = stat.st_mtime if oldest is None else min(oldest, stat.st_mtime)
        newest = stat.st_mtime if newest is None else max(newest, stat.st_mtime)
    return {
        "cache_dir": str(root),
        "records": len(sizes),
        "total_bytes": sum(sizes),
        "oldest_mtime": oldest,
        "newest_mtime": newest,
    }


def clear_cache(cache_dir: Union[str, Path, None] = None) -> int:
    """Delete every cached record; returns how many were removed."""
    root = Path(resolve_cache_dir(cache_dir if cache_dir is None else str(cache_dir)))
    removed = 0
    for path in _cache_files(root):
        try:
            path.unlink()
            removed += 1
        except OSError:
            continue
    for shard in root.glob("*"):
        if shard.is_dir():
            try:
                shard.rmdir()
            except OSError:
                pass
    return removed


def evict_cache(
    cache_dir: Union[str, Path, None] = None,
    max_bytes: int = 0,
) -> Dict[str, int]:
    """Shrink the cache to ``max_bytes`` by deleting least-recently-used
    records (mtime order; cache hits touch their record's mtime, so reads
    count as use).  Returns ``{"evicted": n, "freed_bytes": b}``.
    """
    if max_bytes < 0:
        raise ReproError(f"max_bytes must be >= 0, got {max_bytes}")
    root = Path(resolve_cache_dir(cache_dir if cache_dir is None else str(cache_dir)))
    entries = []
    total = 0
    for path in _cache_files(root):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, str(path), path, stat.st_size))
        total += stat.st_size
    evicted = freed = 0
    # Oldest first; the path string breaks mtime ties deterministically.
    entries.sort()
    for _, _, path, size in entries:
        if total <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        freed += size
        evicted += 1
    return {"evicted": evicted, "freed_bytes": freed}


# ----------------------------------------------------------- cell workers

#: Simulations actually executed in this process (cache-hit tests read it).
SIMULATIONS_RUN = 0


def execute_cell(cell: SweepCell) -> Dict[str, object]:
    """Simulate one cell and return its plain-data record.

    This is the single execution path of the engine: the serial loop and
    every pool worker call exactly this function, which is what makes
    serial and parallel runs bit-identical.
    """
    global SIMULATIONS_RUN
    family = WORKLOADS[cell.workload]
    budget = cell.resource_budget()
    workload_params = dict(cell.workload_params)
    application = family.application(cell.seed, workload_params)
    library = family.library(budget, workload_params)
    policy = POLICIES[cell.policy](**dict(cell.policy_params))
    result = Simulator(application, library, budget, policy).run()
    SIMULATIONS_RUN += 1
    stats = result.stats
    return {
        "budget_label": budget.label,
        "seed": cell.seed,
        "policy": cell.policy,
        "workload": cell.workload,
        "total_cycles": stats.total_cycles,
        "kernel_cycles": stats.kernel_cycles,
        "gap_cycles": stats.gap_cycles,
        "overhead_cycles_charged": stats.overhead_cycles_charged,
        "overhead_cycles_full": stats.overhead_cycles_full,
        "accelerated_fraction": stats.accelerated_fraction(),
        "reconfigurations": stats.reconfigurations,
        "selections": stats.selections,
        "executions_by_mode": dict(sorted(stats.executions_by_mode.items())),
    }


# ----------------------------------------------------------------- engine


@dataclass
class EngineStats:
    """What one :meth:`SweepEngine.run` call did."""

    cells: int = 0          #: cells requested (incl. duplicates)
    unique_cells: int = 0   #: distinct cache keys among them
    cache_hits: int = 0     #: unique cells served from disk
    executed: int = 0       #: unique cells actually simulated

    def reset(self) -> None:
        self.cells = self.unique_cells = self.cache_hits = self.executed = 0


class SweepEngine:
    """Runs sweep cells -- parallel, cached, deterministically ordered.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs in-process; results are
        identical either way.
    cache_dir / use_cache:
        Where cell records live and whether to consult them.  The cache is
        content-addressed: stale entries are never *read* (their key no
        longer matches), only overwritten or left to garbage-collect.
    chunk_size:
        Cells per worker dispatch; defaults to ``len(cells) / (4 * jobs)``
        (clamped to >= 1) so each worker gets a few chunks and stragglers
        do not serialise the tail.
    cache_max_bytes:
        Byte budget for the on-disk cache.  After every :meth:`run` the
        cache is shrunk to this size by evicting least-recently-used
        records (``None`` disables eviction).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Union[str, Path, None] = None,
        use_cache: bool = True,
        chunk_size: Optional[int] = None,
        cache_max_bytes: Optional[int] = None,
    ):
        if jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {jobs}")
        if cache_max_bytes is not None and cache_max_bytes < 0:
            raise ReproError(
                f"cache_max_bytes must be >= 0, got {cache_max_bytes}"
            )
        self.jobs = jobs
        self.cache_dir = Path(
            resolve_cache_dir(cache_dir if cache_dir is None else str(cache_dir))
        )
        self.use_cache = use_cache
        self.chunk_size = chunk_size
        self.cache_max_bytes = cache_max_bytes
        self.stats = EngineStats()

    # ------------------------------------------------------------- cache
    def _record_path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.json"

    def _read_record(self, key: str) -> Optional[Dict[str, object]]:
        path = self._record_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except (OSError, ValueError):
            return None
        if envelope.get("schema") != ENGINE_SCHEMA or envelope.get("key") != key:
            return None
        record = envelope.get("record")
        if isinstance(record, dict):
            # A hit counts as use: bump the mtime so LRU eviction keeps the
            # records sweeps actually reach for.
            try:
                os.utime(path)
            except OSError:
                pass
            return record
        return None

    def _write_record(self, key: str, cell: SweepCell, record: Dict[str, object]) -> None:
        path = self._record_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "schema": ENGINE_SCHEMA,
            "key": key,
            "cell": cell.payload(),
            "record": record,
        }
        # Atomic publish: a crashed/parallel writer never leaves a torn file.
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # --------------------------------------------------------------- run
    def run(self, cells: Sequence[SweepCell]) -> List[Dict[str, object]]:
        """Execute ``cells``; returns one record per cell, in input order.

        Duplicate cells are simulated once and share the record.
        """
        self.stats.reset()
        self.stats.cells = len(cells)
        keys = [cell_key(cell) for cell in cells]
        by_key: Dict[str, SweepCell] = {}
        for cell, key in zip(cells, keys):
            by_key.setdefault(key, cell)
        self.stats.unique_cells = len(by_key)

        records: Dict[str, Dict[str, object]] = {}
        if self.use_cache:
            for key in by_key:
                cached = self._read_record(key)
                if cached is not None:
                    records[key] = cached
            self.stats.cache_hits = len(records)

        missing = [(key, cell) for key, cell in by_key.items() if key not in records]
        fresh = self._execute_missing(missing)
        for (key, cell), record in zip(missing, fresh):
            records[key] = record
            if self.use_cache:
                self._write_record(key, cell, record)
        self.stats.executed = len(missing)
        if self.use_cache and self.cache_max_bytes is not None:
            evict_cache(self.cache_dir, self.cache_max_bytes)
        # Canonical key order, so fresh and cache-served records serialise
        # byte-identically (cached JSON comes back sorted).
        return [
            {field: records[key][field] for field in sorted(records[key])}
            for key in keys
        ]

    def _execute_missing(
        self, missing: Sequence[Tuple[str, SweepCell]]
    ) -> List[Dict[str, object]]:
        cells = [cell for _, cell in missing]
        if not cells:
            return []
        if self.jobs == 1 or len(cells) == 1:
            return [execute_cell(cell) for cell in cells]
        workers = min(self.jobs, len(cells))
        chunk = self.chunk_size or max(1, len(cells) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute_cell, cells, chunksize=chunk))


def resolve_engine(
    engine: Optional[SweepEngine] = None,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: Union[str, Path, None] = None,
    cache_max_bytes: Optional[int] = None,
) -> Optional[SweepEngine]:
    """Engine for the experiment entry points' convenience flags.

    Returns ``engine`` when given; otherwise builds one from the flags, or
    returns ``None`` when the flags ask for nothing beyond the classic
    serial in-process path (so default calls stay dependency-free).
    """
    if engine is not None:
        return engine
    if jobs == 1 and not use_cache and cache_dir is None and cache_max_bytes is None:
        return None
    return SweepEngine(
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        cache_max_bytes=cache_max_bytes,
    )


__all__ = [
    "DEFAULT_CACHE_DIR",
    "ENGINE_SCHEMA",
    "EngineStats",
    "POLICIES",
    "SweepCell",
    "SweepEngine",
    "WORKLOADS",
    "WorkloadFamily",
    "cache_stats",
    "cell_key",
    "clear_cache",
    "evict_cache",
    "execute_cell",
    "library_fingerprint",
    "policy_name_of",
    "register_policy",
    "register_workload",
    "resolve_engine",
]
