"""Multi-task sharing: two applications, two run-time systems, one fabric.

Goes beyond the opaque background task of :mod:`repro.experiments.contention`:
an H.264 encoder and a JPEG encoder are co-scheduled at functional-block
granularity, each running its own mRTS instance against one shared pool of
PRCs, CG slots and one bitstream port.  The measurement of interest is
*interference*: how much each task's busy cycles grow compared to running
alone on the same fabric -- and how that interference melts away as the
fabric budget grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.mrts import MRTS
from repro.fabric.resources import ResourceBudget
from repro.sim.multitask import MultiTaskSimulator, Task
from repro.sim.simulator import Simulator
from repro.util.tables import render_table
from repro.workloads.h264 import h264_application, h264_library
from repro.workloads.jpeg import jpeg_application, jpeg_library


@dataclass
class MultiTaskExperimentResult:
    #: budget label -> task name -> (alone busy cycles, co-run busy cycles)
    cells: Dict[str, Dict[str, Tuple[int, int]]]

    def interference(self, budget_label: str, task: str) -> float:
        alone, shared = self.cells[budget_label][task]
        return shared / alone

    def render(self) -> str:
        rows = []
        for label, tasks in self.cells.items():
            for task, (alone, shared) in tasks.items():
                rows.append(
                    [label, task, alone, shared, round(shared / alone, 2)]
                )
        return render_table(
            ["combo(CG,PRC)", "task", "alone (cycles)", "co-run (cycles)", "interference"],
            rows,
            title="Multi-task fabric sharing (H.264 + JPEG, one mRTS each)",
        )


def run_multitask(
    frames: int = 6,
    images: int = 6,
    seed: int = 7,
    budgets: List[Tuple[int, int]] = ((1, 1), (2, 2), (3, 3)),
) -> MultiTaskExperimentResult:
    """Co-run the two encoders on several fabric budgets."""
    cells: Dict[str, Dict[str, Tuple[int, int]]] = {}
    for cg, prc in budgets:
        budget = ResourceBudget(n_prcs=prc, n_cg_fabrics=cg)
        h264 = h264_application(frames=frames, seed=seed)
        jpeg = jpeg_application(images=images, seed=seed + 1)
        lib_h = h264_library(budget)
        lib_j = jpeg_library(budget)

        alone_h = Simulator(h264, lib_h, budget, MRTS()).run().stats
        alone_j = Simulator(jpeg, lib_j, budget, MRTS()).run().stats
        shared = MultiTaskSimulator(
            [
                Task("h264", h264, lib_h, MRTS()),
                Task("jpeg", jpeg, lib_j, MRTS()),
            ],
            budget,
        ).run()
        cells[budget.label] = {
            "h264": (
                alone_h.total_cycles,
                shared.task("h264").stats.total_cycles,
            ),
            "jpeg": (
                alone_j.total_cycles,
                shared.task("jpeg").stats.total_cycles,
            ),
        }
    return MultiTaskExperimentResult(cells=cells)


__all__ = ["run_multitask", "MultiTaskExperimentResult"]
