"""Run-time fabric contention: variation (b) of the paper's Section 1.

The paper motivates run-time ISE selection with three run-time variations;
(b) is the available fabric being "shared among various tasks".  This
experiment co-runs a background task that periodically claims part of the
PRCs and CG slots, and compares how each run-time system copes:

* mRTS re-selects at every functional block against whatever fabric is
  currently available -- graceful degradation;
* the RISPP-like system also adapts, but with its mis-tuned cost function;
* the compile-time approaches (offline-optimal, Morpheus/4S-like) cannot
  re-decide: whatever part of their static selection lost its fabric is
  simply gone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.baselines import Morpheus4SPolicy, OfflineOptimalPolicy, RisppLikePolicy
from repro.core.mrts import MRTS
from repro.fabric.resources import ResourceBudget
from repro.sim.contention import ContentionSchedule
from repro.sim.simulator import Simulator
from repro.util.tables import render_table
from repro.workloads.h264 import h264_application, h264_library

POLICIES: List[Tuple[str, Callable]] = [
    ("mrts", MRTS),
    ("rispp", RisppLikePolicy),
    ("offline-optimal", OfflineOptimalPolicy),
    ("morpheus4s", Morpheus4SPolicy),
]


@dataclass
class ContentionResult:
    budget_label: str
    #: policy -> cycles without contention
    baseline_cycles: Dict[str, int]
    #: policy -> cycles with the background task
    contended_cycles: Dict[str, int]
    contention_description: str

    def degradation(self, policy: str) -> float:
        """Slowdown factor caused by the background task (1.0 = unaffected)."""
        return self.contended_cycles[policy] / self.baseline_cycles[policy]

    def render(self) -> str:
        rows = [
            [
                name,
                self.baseline_cycles[name],
                self.contended_cycles[name],
                round(self.degradation(name), 2),
            ]
            for name, _ in POLICIES
        ]
        table = render_table(
            ["policy", "alone (cycles)", "contended (cycles)", "degradation"],
            rows,
            title=f"Fabric contention at combination {self.budget_label} "
            f"({self.contention_description})",
        )
        return table


def run_contention(
    frames: int = 12,
    seed: int = 7,
    n_cg: int = 2,
    n_prc: int = 3,
    claimed_prcs: int = 2,
    claimed_cg_slots: int = 4,
    periods: int = 8,
) -> ContentionResult:
    """Compare policies with and without a periodic background task."""
    application = h264_application(frames=frames, seed=seed)
    budget = ResourceBudget(n_prcs=n_prc, n_cg_fabrics=n_cg)
    library = h264_library(budget)

    baseline: Dict[str, int] = {}
    for name, factory in POLICIES:
        baseline[name] = (
            Simulator(application, library, budget, factory()).run().total_cycles
        )

    horizon = max(baseline.values())
    period = max(1, horizon // periods)
    contended: Dict[str, int] = {}
    for name, factory in POLICIES:
        schedule = ContentionSchedule.periodic(
            period=period,
            duty_prcs=claimed_prcs,
            duty_cg_slots=claimed_cg_slots,
            until=2 * horizon,
        )
        contended[name] = (
            Simulator(application, library, budget, factory(), contention=schedule)
            .run()
            .total_cycles
        )

    description = (
        f"background task holds {claimed_prcs} PRCs + {claimed_cg_slots} CG slots "
        f"every other ~{period:,} cycles"
    )
    return ContentionResult(
        budget_label=budget.label,
        baseline_cycles=baseline,
        contended_cycles=contended,
        contention_description=description,
    )


__all__ = ["run_contention", "ContentionResult", "POLICIES"]
