"""Fig. 5, measured: the execution behaviour of an ISE.

Fig. 5 of the paper is a schematic of how a kernel's executions migrate
through the intermediate ISEs of the selected ISE as its data paths finish
reconfiguring (the ``NoE`` quantities of Eq. 3).  Our simulator can measure
the real staircase: this experiment runs the encoder, extracts the phase
timeline of the deblocking-filter kernel within one functional-block
iteration, and reports the measured NoE / latency of every phase.

The timeline comes from the ``kernel_timeline`` sweep metric on a regular
declarative cell, so Fig. 5 shares the engine's caching and backend
fan-out with fig8-10 instead of running its own traced simulation inline.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.analysis.timeline import KernelTimeline, timeline_from_payload
from repro.experiments.engine import SweepCell, SweepEngine, resolve_engine


@dataclass
class Fig5Result:
    kernel: str
    timeline: KernelTimeline

    @property
    def n_phases(self) -> int:
        return len(self.timeline.phases)

    @property
    def latencies(self) -> List[int]:
        return [p.latency for p in self.timeline.phases]

    @property
    def staircase_is_monotone(self) -> bool:
        """Does the per-execution latency only improve within the window?"""
        lat = self.latencies
        return all(b <= a for a, b in zip(lat, lat[1:]))

    def render(self) -> str:
        return (
            self.timeline.render()
            + f"\nmeasured saved cycles in this window: "
            f"{self.timeline.saved_cycles:,} "
            f"({self.timeline.total_executions} executions)"
        )


def fig5_cell(
    frames: int = 4,
    seed: int = 7,
    n_cg: int = 2,
    n_prc: int = 2,
    kernel: str = "lf.deblock_luma",
    block_window: int = 0,
) -> SweepCell:
    """The declarative cell behind Fig. 5 (mRTS on the H.264 encoder, with
    the traced ``kernel_timeline`` metric attached)."""
    return SweepCell.make(
        (n_cg, n_prc),
        seed,
        "mrts",
        workload="h264",
        workload_params={"frames": frames},
        metrics={
            "kernel_timeline": {"kernel": kernel, "block_window": block_window}
        },
    )


def run_fig5(
    frames: int = 4,
    seed: int = 7,
    n_cg: int = 2,
    n_prc: int = 2,
    kernel: str = "lf.deblock_luma",
    block_window: int = 0,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: Union[str, Path, None] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    coordinator: Optional[str] = None,
    engine: Optional[SweepEngine] = None,
) -> Fig5Result:
    """Measure the Fig. 5 staircase of ``kernel`` in one block iteration."""
    eng = resolve_engine(
        engine, jobs, use_cache, cache_dir,
        backend=backend, workers=workers, coordinator=coordinator,
    ) or SweepEngine(jobs=1, use_cache=False)
    [record] = eng.run(
        [
            fig5_cell(
                frames=frames, seed=seed, n_cg=n_cg, n_prc=n_prc,
                kernel=kernel, block_window=block_window,
            )
        ]
    )
    timeline = timeline_from_payload(record["metrics"]["kernel_timeline"])
    return Fig5Result(kernel=kernel, timeline=timeline)


__all__ = ["run_fig5", "fig5_cell", "Fig5Result"]
