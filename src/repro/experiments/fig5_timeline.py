"""Fig. 5, measured: the execution behaviour of an ISE.

Fig. 5 of the paper is a schematic of how a kernel's executions migrate
through the intermediate ISEs of the selected ISE as its data paths finish
reconfiguring (the ``NoE`` quantities of Eq. 3).  Our simulator can measure
the real staircase: this experiment runs the encoder, extracts the phase
timeline of the deblocking-filter kernel within one functional-block
iteration, and reports the measured NoE / latency of every phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.timeline import KernelTimeline, kernel_timeline
from repro.core.mrts import MRTS
from repro.fabric.resources import ResourceBudget
from repro.sim.simulator import Simulator
from repro.workloads.h264 import h264_application, h264_library


@dataclass
class Fig5Result:
    kernel: str
    timeline: KernelTimeline

    @property
    def n_phases(self) -> int:
        return len(self.timeline.phases)

    @property
    def latencies(self) -> List[int]:
        return [p.latency for p in self.timeline.phases]

    @property
    def staircase_is_monotone(self) -> bool:
        """Does the per-execution latency only improve within the window?"""
        lat = self.latencies
        return all(b <= a for a, b in zip(lat, lat[1:]))

    def render(self) -> str:
        return (
            self.timeline.render()
            + f"\nmeasured saved cycles in this window: "
            f"{self.timeline.saved_cycles:,} "
            f"({self.timeline.total_executions} executions)"
        )


def run_fig5(
    frames: int = 4,
    seed: int = 7,
    n_cg: int = 2,
    n_prc: int = 2,
    kernel: str = "lf.deblock_luma",
    block_window: int = 0,
) -> Fig5Result:
    """Measure the Fig. 5 staircase of ``kernel`` in one block iteration."""
    application = h264_application(frames=frames, seed=seed)
    budget = ResourceBudget(n_prcs=n_prc, n_cg_fabrics=n_cg)
    library = h264_library(budget)
    result = Simulator(
        application, library, budget, MRTS(), collect_trace=True
    ).run()
    timeline = kernel_timeline(result, kernel, block_window=block_window)
    return Fig5Result(kernel=kernel, timeline=timeline)


__all__ = ["run_fig5", "Fig5Result"]
