"""Sensitivity of the headline results to the cost-model assumptions.

The reproduction replaces the authors' place-and-route characterisation
with an analytical technology model (DESIGN.md §2).  This experiment
perturbs the model's most influential assumptions -- the CG fabric's
bit-operation penalty, the FG bitstream size (i.e. the ~1.2 ms
reconfiguration time), and the CG context capacity -- and re-measures the
headline quantity (mRTS speedup over RISC at the top multi-grained
combination, and the MG-vs-single-granularity ordering).  If a conclusion
only holds at one magic constant, this table shows it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines.riscmode import RiscModePolicy
from repro.core.mrts import MRTS
from repro.fabric.cost_model import TechnologyCostModel
from repro.fabric.resources import ResourceBudget
from repro.sim.simulator import Simulator
from repro.util.tables import render_table
from repro.workloads.h264 import h264_application, h264_library


@dataclass(frozen=True)
class Variant:
    """One perturbed modelling assumption."""

    name: str
    cost_model: TechnologyCostModel
    contexts_per_cg_fabric: int = 4
    bitstream_kb: float = 79.2  # informational; folded into the cost model


def _variants() -> List[Variant]:
    base = TechnologyCostModel()
    return [
        Variant("baseline", base),
        Variant(
            "CG bit-op penalty 2x (worse CG for control code)",
            dataclasses.replace(base, cg_bit_op_cycles=6),
        ),
        Variant(
            "CG bit-op penalty 1 cycle (CG as good as FG at bits)",
            dataclasses.replace(base, cg_bit_op_cycles=1),
        ),
        Variant(
            "FG multiplies cheap (hard DSP blocks)",
            dataclasses.replace(base, fg_mul_extra_depth=0),
        ),
        Variant(
            "2 contexts per CG fabric (scarcer CG)",
            base,
            contexts_per_cg_fabric=2,
        ),
        Variant(
            "8 contexts per CG fabric (abundant CG)",
            base,
            contexts_per_cg_fabric=8,
        ),
    ]


@dataclass
class SensitivityResult:
    #: variant name -> (speedup@33, speedup@11, speedup@30, speedup@03)
    cells: Dict[str, Tuple[float, float, float, float]]

    def speedup_33(self, name: str) -> float:
        return self.cells[name][0]

    def mg_beats_single(self, name: str) -> bool:
        """Does (1 CG, 1 PRC) still beat both 3-unit single-granularity
        budgets under this variant?"""
        _, s11, s30, s03 = self.cells[name]
        return s11 > s03 and s11 > 0.95 * s30

    def render(self) -> str:
        rows = []
        for name, (s33, s11, s30, s03) in self.cells.items():
            rows.append(
                [
                    name,
                    round(s33, 2),
                    round(s11, 2),
                    round(s30, 2),
                    round(s03, 2),
                    "yes" if self.mg_beats_single(name) else "NO",
                ]
            )
        return render_table(
            ["variant", "(3,3)", "(1,1)", "(3,0)", "(0,3)", "MG wins"],
            rows,
            title="Cost-model sensitivity (mRTS speedup over RISC)",
        )


def run_sensitivity(frames: int = 8, seed: int = 7) -> SensitivityResult:
    """Re-measure the headline speedups under each model variant."""
    cells: Dict[str, Tuple[float, float, float, float]] = {}
    application = h264_application(frames=frames, seed=seed)
    for variant in _variants():
        speedups = []
        for cg, prc in ((3, 3), (1, 1), (3, 0), (0, 3)):
            budget = ResourceBudget(
                n_prcs=prc,
                n_cg_fabrics=cg,
                contexts_per_cg_fabric=variant.contexts_per_cg_fabric,
            )
            library = h264_library(budget, cost_model=variant.cost_model)
            risc = Simulator(
                application, library, budget, RiscModePolicy()
            ).run().total_cycles
            mrts = Simulator(
                application, library, budget, MRTS()
            ).run().total_cycles
            speedups.append(risc / mrts)
        cells[variant.name] = tuple(speedups)
    return SensitivityResult(cells=cells)


__all__ = ["run_sensitivity", "SensitivityResult", "Variant"]
