"""Sensitivity of the headline results to the cost-model assumptions.

The reproduction replaces the authors' place-and-route characterisation
with an analytical technology model (DESIGN.md §2).  This experiment
perturbs the model's most influential assumptions -- the CG fabric's
bit-operation penalty, the FG bitstream size (i.e. the ~1.2 ms
reconfiguration time), and the CG context capacity -- and re-measures the
headline quantity (mRTS speedup over RISC at the top multi-grained
combination, and the MG-vs-single-granularity ordering).  If a conclusion
only holds at one magic constant, this table shows it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.engine import SweepCell, SweepEngine, resolve_engine
from repro.util.tables import render_table


@dataclass(frozen=True)
class Variant:
    """One perturbed modelling assumption.

    ``cost_overrides`` are ``(field, value)`` pairs applied to the default
    :class:`~repro.fabric.cost_model.TechnologyCostModel` by the workload
    registry (see ``engine._cost_model_of``).
    """

    name: str
    cost_overrides: Tuple[Tuple[str, object], ...] = ()
    contexts_per_cg_fabric: int = 4
    bitstream_kb: float = 79.2  # informational; folded into the cost model


def _variants() -> List[Variant]:
    return [
        Variant("baseline"),
        Variant(
            "CG bit-op penalty 2x (worse CG for control code)",
            (("cg_bit_op_cycles", 6),),
        ),
        Variant(
            "CG bit-op penalty 1 cycle (CG as good as FG at bits)",
            (("cg_bit_op_cycles", 1),),
        ),
        Variant(
            "FG multiplies cheap (hard DSP blocks)",
            (("fg_mul_extra_depth", 0),),
        ),
        Variant(
            "2 contexts per CG fabric (scarcer CG)",
            contexts_per_cg_fabric=2,
        ),
        Variant(
            "8 contexts per CG fabric (abundant CG)",
            contexts_per_cg_fabric=8,
        ),
    ]


@dataclass
class SensitivityResult:
    #: variant name -> (speedup@33, speedup@11, speedup@30, speedup@03)
    cells: Dict[str, Tuple[float, float, float, float]]

    def speedup_33(self, name: str) -> float:
        return self.cells[name][0]

    def mg_beats_single(self, name: str) -> bool:
        """Does (1 CG, 1 PRC) still beat both 3-unit single-granularity
        budgets under this variant?"""
        _, s11, s30, s03 = self.cells[name]
        return s11 > s03 and s11 > 0.95 * s30

    def render(self) -> str:
        rows = []
        for name, (s33, s11, s30, s03) in self.cells.items():
            rows.append(
                [
                    name,
                    round(s33, 2),
                    round(s11, 2),
                    round(s30, 2),
                    round(s03, 2),
                    "yes" if self.mg_beats_single(name) else "NO",
                ]
            )
        return render_table(
            ["variant", "(3,3)", "(1,1)", "(3,0)", "(0,3)", "MG wins"],
            rows,
            title="Cost-model sensitivity (mRTS speedup over RISC)",
        )


BUDGETS: Tuple[Tuple[int, int], ...] = ((3, 3), (1, 1), (3, 0), (0, 3))


def _variant_cell(
    variant: Variant, budget: Tuple[int, int], policy: str, frames: int, seed: int
) -> SweepCell:
    workload_params: Dict[str, object] = {"frames": frames}
    if variant.cost_overrides:
        workload_params["cost_model"] = variant.cost_overrides
    budget_params: Dict[str, object] = {}
    if variant.contexts_per_cg_fabric != 4:
        budget_params["contexts_per_cg_fabric"] = variant.contexts_per_cg_fabric
    return SweepCell.make(
        budget,
        seed,
        policy,
        workload="h264",
        workload_params=workload_params,
        budget_params=budget_params,
    )


def run_sensitivity(
    frames: int = 8,
    seed: int = 7,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    backend=None,
    workers=None,
    coordinator=None,
    engine: Optional[SweepEngine] = None,
) -> SensitivityResult:
    """Re-measure the headline speedups under each model variant.

    The (variant x budget x policy) grid runs as declarative
    :class:`SweepCell`\\ s -- through the parallel/cached engine when the
    flags ask for one, serially through :func:`execute_cell` otherwise --
    so cost-model perturbations are part of each cell's cache key.
    """
    variants = _variants()
    grid = [
        _variant_cell(variant, budget, policy, frames, seed)
        for variant in variants
        for budget in BUDGETS
        for policy in ("risc", "mrts")
    ]
    resolved = resolve_engine(engine, jobs=jobs, use_cache=use_cache,
                              cache_dir=cache_dir, backend=backend,
                              workers=workers, coordinator=coordinator)
    if resolved is not None:
        records = resolved.run(grid)
    else:
        from repro.experiments.engine import execute_cell

        records = [execute_cell(cell) for cell in grid]

    cells: Dict[str, Tuple[float, float, float, float]] = {}
    cursor = iter(records)
    for variant in variants:
        speedups = []
        for _ in BUDGETS:
            risc = next(cursor)["total_cycles"]
            mrts = next(cursor)["total_cycles"]
            speedups.append(risc / mrts)
        cells[variant.name] = tuple(speedups)
    return SensitivityResult(cells=cells)


__all__ = ["run_sensitivity", "SensitivityResult", "Variant"]
