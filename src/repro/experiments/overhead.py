"""Section 5.4: implementation overhead of mRTS.

Measures the selector's modelled cycle cost per functional-block selection
(the paper: on average less than 3000 cycles per kernel, about 1.9 % of an
average functional block's execution time) and how much of it the
selection/reconfiguration overlap hides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mrts import MRTS
from repro.experiments.common import MatrixRunner
from repro.fabric.resources import ResourceBudget
from repro.util.tables import render_table
from repro.workloads.h264 import h264_library
from repro.sim.simulator import Simulator


@dataclass
class OverheadResult:
    selections: int
    kernels_selected: int
    total_overhead_cycles: int
    charged_overhead_cycles: int
    total_cycles: int
    mean_block_cycles: float

    @property
    def cycles_per_selection(self) -> float:
        return self.total_overhead_cycles / max(1, self.selections)

    @property
    def cycles_per_kernel(self) -> float:
        """The paper's '<3000 cycles to select an ISE for each kernel'."""
        return self.total_overhead_cycles / max(1, self.kernels_selected)

    @property
    def fraction_of_block_time(self) -> float:
        """Full overhead per selection relative to a mean block iteration
        (the paper's ~1.9 %)."""
        if self.mean_block_cycles == 0:
            return 0.0
        return self.cycles_per_selection / self.mean_block_cycles

    @property
    def hidden_fraction(self) -> float:
        """Share of the selector work hidden behind reconfigurations."""
        if self.total_overhead_cycles == 0:
            return 0.0
        return 1.0 - self.charged_overhead_cycles / self.total_overhead_cycles

    def render(self) -> str:
        rows = [
            ["selections (block entries)", self.selections],
            ["kernel selections", self.kernels_selected],
            ["mean cycles per kernel selection", round(self.cycles_per_kernel, 1)],
            ["mean cycles per block selection", round(self.cycles_per_selection, 1)],
            ["fraction of block execution time", f"{100 * self.fraction_of_block_time:.2f}%"],
            ["hidden behind reconfiguration", f"{100 * self.hidden_fraction:.2f}%"],
            ["charged fraction of total runtime", f"{100 * self.charged_overhead_cycles / self.total_cycles:.3f}%"],
        ]
        return render_table(
            ["metric", "value"], rows, title="Section 5.4: mRTS overhead"
        )


def run_overhead(
    frames: int = 16,
    seed: int = 7,
    n_cg: int = 2,
    n_prc: int = 2,
) -> OverheadResult:
    """Measure the mRTS overhead on the H.264 encoder."""
    runner = MatrixRunner(frames=frames, seed=seed)
    budget = ResourceBudget(n_prcs=n_prc, n_cg_fabrics=n_cg)
    policy = MRTS()
    library = h264_library(budget)
    result = Simulator(runner.application, library, budget, policy).run()
    kernels_selected = sum(
        len(runner.application.block(it.block).kernels)
        for it in runner.application.iterations
    )
    return OverheadResult(
        selections=policy.selection_count,
        kernels_selected=kernels_selected,
        total_overhead_cycles=policy.total_overhead_cycles,
        charged_overhead_cycles=policy.total_charged_overhead_cycles,
        total_cycles=result.total_cycles,
        mean_block_cycles=result.stats.mean_block_cycles(),
    )


__all__ = ["run_overhead", "OverheadResult"]
