"""Fig. 10: application speedup compared to RISC-mode execution.

Runs mRTS over the (CG 0..3, PRC 0..3) grid and groups the combinations
into FG-only, CG-only and multi-grained, as the paper's figure does.  The
published shape: FG-only combinations reach ~1.8-2.2x, multi-grained
combinations exceed 5x at the top, and the (1 CG, 1 PRC) combination beats
3 PRCs or 3 CG fabrics alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines.riscmode import RiscModePolicy
from repro.core.mrts import MRTS
from repro.experiments.common import MatrixRunner, budget_grid, geometric_mean
from repro.experiments.engine import SweepEngine, resolve_engine
from repro.fabric.resources import ResourceBudget
from repro.util.tables import render_table


def classify(budget: ResourceBudget) -> str:
    """Group label of a combination: risc / fg-only / cg-only / multi-grained."""
    if budget.n_prcs == 0 and budget.n_cg_fabrics == 0:
        return "risc"
    if budget.n_cg_fabrics == 0:
        return "fg-only"
    if budget.n_prcs == 0:
        return "cg-only"
    return "multi-grained"


@dataclass
class Fig10Result:
    budgets: List[ResourceBudget]
    speedups: List[float]

    def group(self, kind: str) -> Dict[str, float]:
        """Combination label -> speedup for one group."""
        return {
            b.label: s
            for b, s in zip(self.budgets, self.speedups)
            if classify(b) == kind
        }

    def group_range(self, kind: str) -> (float, float):
        values = list(self.group(kind).values())
        return (min(values), max(values)) if values else (0.0, 0.0)

    @property
    def average_speedup(self) -> float:
        return geometric_mean(
            [s for b, s in zip(self.budgets, self.speedups) if classify(b) != "risc"]
        )

    def speedup_of(self, label: str) -> float:
        for b, s in zip(self.budgets, self.speedups):
            if b.label == label:
                return s
        raise KeyError(label)

    def render(self) -> str:
        from repro.util.plot import bar_chart

        rows = [
            [b.label, classify(b), round(s, 2)]
            for b, s in zip(self.budgets, self.speedups)
        ]
        table = render_table(
            ["combo(CG,PRC)", "group", "speedup"],
            rows,
            title="Fig. 10: mRTS speedup over RISC mode",
        )
        table += "\n" + bar_chart(
            [b.label for b in self.budgets],
            self.speedups,
            unit="x",
        )
        fg_lo, fg_hi = self.group_range("fg-only")
        cg_lo, cg_hi = self.group_range("cg-only")
        mg_lo, mg_hi = self.group_range("multi-grained")
        return (
            f"{table}\n"
            f"FG-only: {fg_lo:.2f}-{fg_hi:.2f}x, CG-only: {cg_lo:.2f}-{cg_hi:.2f}x, "
            f"multi-grained: {mg_lo:.2f}-{mg_hi:.2f}x, average {self.average_speedup:.2f}x\n"
            f"(1 CG, 1 PRC) = {self.speedup_of('11'):.2f}x vs 3 PRCs = "
            f"{self.speedup_of('03'):.2f}x vs 3 CG fabrics = {self.speedup_of('30'):.2f}x"
        )


def run_fig10(
    frames: int = 16,
    seed: int = 7,
    max_cg: int = 3,
    max_prc: int = 3,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    backend=None,
    workers=None,
    coordinator=None,
    engine: SweepEngine = None,
) -> Fig10Result:
    """Reproduce Fig. 10 over the (CG 0..max_cg) x (PRC 0..max_prc) grid.

    Engine flags as in :func:`repro.experiments.fig8_comparison.run_fig8`.
    """
    runner = MatrixRunner(
        frames=frames, seed=seed,
        engine=resolve_engine(engine, jobs, use_cache, cache_dir,
                              backend=backend, workers=workers,
                              coordinator=coordinator),
    )
    budgets = budget_grid(max_cg, max_prc)
    runner.prefetch(budgets, ["risc", "mrts"])
    speedups = []
    for budget in budgets:
        risc = runner.cycles(budget, RiscModePolicy)
        mrts = runner.cycles(budget, MRTS)
        speedups.append(risc / mrts)
    return Fig10Result(budgets=budgets, speedups=speedups)


__all__ = ["run_fig10", "Fig10Result", "classify"]
