"""Run every experiment and print the full report.

Usage::

    python -m repro.experiments            # full runs (a few minutes)
    python -m repro.experiments --fast     # reduced frame counts
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    run_ablations,
    run_contention,
    run_energy,
    run_granularity,
    run_multitask,
    run_sensitivity,
    run_fig1,
    run_fig2,
    run_fig5,
    run_fig8,
    run_fig9,
    run_fig10,
    run_overhead,
    run_search_space,
)


def run_all(
    fast: bool = False,
    stream=None,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    backend=None,
    workers=None,
    coordinator=None,
) -> None:
    """Execute every experiment, printing each report as it completes.

    ``jobs``/``use_cache``/``cache_dir`` (and the executor knobs
    ``backend``/``workers``/``coordinator``) route the cell-based
    experiments (Figs. 2, 5, 8-10 and the cost-model sensitivity table)
    through the parallel cached sweep engine; the remaining experiments
    are trace- or structure-bound and run in-process.
    """
    stream = stream or sys.stdout
    frames = 6 if fast else 16
    engine_kwargs = dict(jobs=jobs, use_cache=use_cache, cache_dir=cache_dir,
                         backend=backend, workers=workers,
                         coordinator=coordinator)
    experiments = [
        ("Fig. 1", lambda: run_fig1(points=20 if fast else 50)),
        ("Fig. 2", lambda: run_fig2(frames=frames, **engine_kwargs)),
        ("Fig. 5 (measured)", lambda: run_fig5(frames=4, **engine_kwargs)),
        ("Fig. 8", lambda: run_fig8(frames=frames, **engine_kwargs)),
        ("Fig. 9", lambda: run_fig9(frames=frames, max_prc=4 if fast else 6,
                                    **engine_kwargs)),
        ("Fig. 10", lambda: run_fig10(frames=frames, **engine_kwargs)),
        ("Overhead (5.4)", lambda: run_overhead(frames=frames)),
        ("Search space (4.1)", run_search_space),
        ("Ablations", lambda: run_ablations(frames=frames)),
        ("Fabric contention (Sec. 1, variation b)", lambda: run_contention(frames=6 if fast else 12)),
        ("Selection granularity (Sec. 1, [11])", lambda: run_granularity(frames=6 if fast else 12)),
        ("Multi-task sharing (Sec. 1, variation b)", lambda: run_multitask(frames=4 if fast else 6, images=4 if fast else 6)),
        ("Energy (extension)", lambda: run_energy(frames=6 if fast else 12)),
        ("Cost-model sensitivity (extension)",
         lambda: run_sensitivity(frames=4 if fast else 8, **engine_kwargs)),
    ]
    for name, fn in experiments:
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        print(f"\n{'=' * 72}\n{name}  [{elapsed:.1f}s]\n{'=' * 72}", file=stream)
        print(result.render(), file=stream)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="reduced frame counts (quick check)"
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the grid experiments (Figs. 8-10)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read/write the on-disk sweep cell cache",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="sweep cell cache location (default: .repro_cache)",
    )
    from repro.experiments.backends import backend_names

    parser.add_argument(
        "--backend", default=None, choices=backend_names(),
        help="executor backend (default: pool when --jobs > 1, else serial)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes spawned by the distributed backend",
    )
    parser.add_argument(
        "--coordinator", default=None,
        help="HOST:PORT the distributed coordinator binds (default loopback)",
    )
    args = parser.parse_args(argv)
    run_all(
        fast=args.fast,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        backend=args.backend,
        workers=args.workers,
        coordinator=args.coordinator,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
