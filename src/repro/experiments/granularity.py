"""Selection granularity: functional-block level vs. task level.

Section 1 of the paper dismisses task-level run-time management ([11],
Huang et al.) because applications "exhibit adaptivity at a finer level of
granularity, e.g. at the functional block level".  This experiment
quantifies that: mRTS (per-block selection) against the [11]-like
task-level manager at several re-decision periods, on the same workload
and fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines.tasklevel import TaskLevelPolicy
from repro.core.mrts import MRTS
from repro.fabric.resources import ResourceBudget
from repro.sim.simulator import Simulator
from repro.util.tables import render_table
from repro.workloads.h264 import h264_application, h264_library


@dataclass
class GranularityResult:
    budget_label: str
    mrts_cycles: int
    #: re-decision period (block entries) -> task-level cycles
    task_level_cycles: Dict[int, int]
    risc_cycles: int

    def advantage(self, period: int) -> float:
        """mRTS speedup over the task-level manager at ``period``."""
        return self.task_level_cycles[period] / self.mrts_cycles

    def render(self) -> str:
        rows = [["mRTS (per functional block)", self.mrts_cycles,
                 round(self.risc_cycles / self.mrts_cycles, 2), "-"]]
        for period, cycles in sorted(self.task_level_cycles.items()):
            rows.append(
                [
                    f"task-level (re-decide every {period} blocks)",
                    cycles,
                    round(self.risc_cycles / cycles, 2),
                    round(self.advantage(period), 2),
                ]
            )
        return render_table(
            ["policy", "cycles", "speedup vs RISC", "mRTS advantage"],
            rows,
            title=f"Selection granularity at combination {self.budget_label}",
        )


def run_granularity(
    frames: int = 12,
    seed: int = 7,
    n_cg: int = 2,
    n_prc: int = 2,
    periods: List[int] = (3, 9, 18),
) -> GranularityResult:
    """Compare per-block selection against task-level re-decision periods."""
    application = h264_application(frames=frames, seed=seed)
    budget = ResourceBudget(n_prcs=n_prc, n_cg_fabrics=n_cg)
    library = h264_library(budget)

    from repro.baselines.riscmode import RiscModePolicy

    risc = Simulator(application, library, budget, RiscModePolicy()).run().total_cycles
    mrts = Simulator(application, library, budget, MRTS()).run().total_cycles
    task_level = {
        period: Simulator(
            application,
            library,
            budget,
            TaskLevelPolicy(reselect_every_blocks=period),
        )
        .run()
        .total_cycles
        for period in periods
    }
    return GranularityResult(
        budget_label=budget.label,
        mrts_cycles=mrts,
        task_level_cycles=task_level,
        risc_cycles=risc,
    )


__all__ = ["run_granularity", "GranularityResult"]
