"""Generic parameter sweeps over (budget x seed x policy x workload).

The figure modules answer the paper's questions; this utility answers
yours: run a cartesian sweep, collect per-cell metrics, aggregate across
seeds, and dump everything as records for plotting.  Used by the
calibration scripts and the robustness tests (are the headline shapes
stable across seeds?).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.riscmode import RiscModePolicy
from repro.fabric.resources import ResourceBudget
from repro.sim.simulator import SimulationResult, Simulator
from repro.util.tables import render_table
from repro.util.validation import ReproError


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep."""

    budget_label: str
    seed: int
    policy: str
    total_cycles: int
    speedup_vs_risc: float
    accelerated_fraction: float
    reconfigurations: int


@dataclass
class SweepResult:
    points: List[SweepPoint] = field(default_factory=list)

    def filtered(self, **criteria) -> List[SweepPoint]:
        """Points matching all keyword criteria (attribute == value)."""
        out = []
        for point in self.points:
            if all(getattr(point, key) == value for key, value in criteria.items()):
                out.append(point)
        return out

    def mean_speedup(self, budget_label: str, policy: str) -> float:
        """Seed-averaged speedup of one (budget, policy) cell."""
        cells = self.filtered(budget_label=budget_label, policy=policy)
        if not cells:
            raise ReproError(f"no sweep points for ({budget_label}, {policy})")
        return sum(p.speedup_vs_risc for p in cells) / len(cells)

    def speedup_spread(self, budget_label: str, policy: str) -> Tuple[float, float]:
        """(min, max) speedup across seeds for one cell."""
        cells = self.filtered(budget_label=budget_label, policy=policy)
        values = [p.speedup_vs_risc for p in cells]
        return min(values), max(values)

    def records(self) -> Tuple[List[str], List[List[object]]]:
        headers = [
            "budget", "seed", "policy", "cycles", "speedup",
            "accelerated", "reconfigs",
        ]
        rows = [
            [
                p.budget_label, p.seed, p.policy, p.total_cycles,
                p.speedup_vs_risc, p.accelerated_fraction, p.reconfigurations,
            ]
            for p in self.points
        ]
        return headers, rows

    def render(self) -> str:
        headers, rows = self.records()
        return render_table(headers, rows, title="Parameter sweep")


def run_sweep(
    budgets: Sequence[Tuple[int, int]],
    seeds: Sequence[int],
    policies: Dict[str, Callable],
    application_factory: Optional[Callable] = None,
    library_factory: Optional[Callable] = None,
) -> SweepResult:
    """Run every (budget, seed, policy) combination.

    ``application_factory(seed)`` builds the workload;
    ``library_factory(budget)`` the ISE library.  Both default to the H.264
    canon.  A RISC reference is simulated once per (budget, seed) for the
    speedup column.
    """
    if application_factory is None:
        from repro.workloads.h264 import h264_application

        application_factory = lambda seed: h264_application(frames=8, seed=seed)
    if library_factory is None:
        from repro.workloads.h264 import h264_library

        library_factory = h264_library

    result = SweepResult()
    for cg, prc in budgets:
        budget = ResourceBudget(n_prcs=prc, n_cg_fabrics=cg)
        library = library_factory(budget)
        for seed in seeds:
            application = application_factory(seed)
            risc = Simulator(
                application, library, budget, RiscModePolicy()
            ).run().total_cycles
            for name, factory in policies.items():
                run: SimulationResult = Simulator(
                    application, library, budget, factory()
                ).run()
                result.points.append(
                    SweepPoint(
                        budget_label=budget.label,
                        seed=seed,
                        policy=name,
                        total_cycles=run.total_cycles,
                        speedup_vs_risc=risc / run.total_cycles,
                        accelerated_fraction=run.stats.accelerated_fraction(),
                        reconfigurations=run.stats.reconfigurations,
                    )
                )
    return result


__all__ = ["SweepPoint", "SweepResult", "run_sweep"]
