"""Generic parameter sweeps over (budget x seed x policy x workload).

The figure modules answer the paper's questions; this utility answers
yours: run a cartesian sweep, collect per-cell metrics, aggregate across
seeds, and dump everything as records for plotting.  Used by the
calibration scripts and the robustness tests (are the headline shapes
stable across seeds?).

Declarative sweeps (registered workload + registered policy names) route
through :class:`repro.experiments.engine.SweepEngine`: pass ``jobs`` to fan
cells out over worker processes and ``use_cache``/``cache_dir`` to reuse
cell records across invocations.  Sweeps over ad-hoc factories
(``application_factory``/``library_factory``) cannot be hashed or pickled,
so they always run serially in-process.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines.riscmode import RiscModePolicy
from repro.experiments.engine import (
    POLICIES,
    SweepCell,
    SweepEngine,
    policy_name_of,
    resolve_engine,
)
from repro.fabric.resources import ResourceBudget
from repro.sim.simulator import SimulationResult, Simulator
from repro.util.tables import render_table
from repro.util.validation import ReproError


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep."""

    budget_label: str
    seed: int
    policy: str
    total_cycles: int
    speedup_vs_risc: float
    accelerated_fraction: float
    reconfigurations: int


#: Legal criteria names for :meth:`SweepResult.filtered`.
_POINT_ATTRIBUTES = frozenset(f.name for f in fields(SweepPoint))


@dataclass
class SweepResult:
    points: List[SweepPoint] = field(default_factory=list)

    def filtered(self, **criteria) -> List[SweepPoint]:
        """Points matching all keyword criteria (attribute == value).

        Unknown attribute names raise :class:`ReproError` -- a typo in a
        criteria keyword must not masquerade as an empty result.
        """
        unknown = sorted(set(criteria) - _POINT_ATTRIBUTES)
        if unknown:
            raise ReproError(
                f"unknown sweep point attribute(s) {unknown}; "
                f"valid: {sorted(_POINT_ATTRIBUTES)}"
            )
        out = []
        for point in self.points:
            if all(getattr(point, key) == value for key, value in criteria.items()):
                out.append(point)
        return out

    def mean_speedup(self, budget_label: str, policy: str) -> float:
        """Seed-averaged speedup of one (budget, policy) cell."""
        cells = self.filtered(budget_label=budget_label, policy=policy)
        if not cells:
            raise ReproError(f"no sweep points for ({budget_label}, {policy})")
        return sum(p.speedup_vs_risc for p in cells) / len(cells)

    def speedup_spread(self, budget_label: str, policy: str) -> Tuple[float, float]:
        """(min, max) speedup across seeds for one cell."""
        cells = self.filtered(budget_label=budget_label, policy=policy)
        values = [p.speedup_vs_risc for p in cells]
        return min(values), max(values)

    def records(self) -> Tuple[List[str], List[List[object]]]:
        headers = [
            "budget", "seed", "policy", "cycles", "speedup",
            "accelerated", "reconfigs",
        ]
        rows = [
            [
                p.budget_label, p.seed, p.policy, p.total_cycles,
                p.speedup_vs_risc, p.accelerated_fraction, p.reconfigurations,
            ]
            for p in self.points
        ]
        return headers, rows

    def render(self) -> str:
        headers, rows = self.records()
        return render_table(headers, rows, title="Parameter sweep")


PolicySpec = Union[Dict[str, Optional[Callable]], Sequence[str]]


def _declarative_policies(policies: PolicySpec) -> Optional[List[str]]:
    """Policy names if every entry resolves to the engine registry.

    Accepts a sequence of registered names, or the classic name->factory
    dict when each factory is exactly the registered one (or ``None``).
    Returns ``None`` when any entry is ad-hoc.
    """
    if not isinstance(policies, dict):
        names = list(policies)
        if not all(isinstance(name, str) for name in names):
            return None
        unknown = sorted(set(names) - set(POLICIES))
        if unknown:
            raise ReproError(
                f"unknown policy name(s) {unknown}; "
                f"registered: {sorted(POLICIES)}"
            )
        return names
    names = []
    for name, factory in policies.items():
        if factory is not None and policy_name_of(factory) != name:
            return None
        if name not in POLICIES:
            return None
        names.append(name)
    return names


def run_sweep(
    budgets: Sequence[Tuple[int, int]],
    seeds: Sequence[int],
    policies: PolicySpec,
    application_factory: Optional[Callable] = None,
    library_factory: Optional[Callable] = None,
    *,
    workload: str = "h264",
    workload_params: Optional[Dict[str, object]] = None,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: Union[str, Path, None] = None,
    cache_max_bytes: Optional[int] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    coordinator: Optional[str] = None,
    engine: Optional[SweepEngine] = None,
) -> SweepResult:
    """Run every (budget, seed, policy) combination.

    ``budgets`` are ``(n_cg_fabrics, n_prcs)`` pairs.  ``policies`` is a
    sequence of registered policy names, or a ``name -> factory`` dict.  A
    RISC reference is simulated once per (budget, seed) for the speedup
    column.

    Two execution paths produce identical points:

    * **Engine path** (default): cells go through a
      :class:`~repro.experiments.engine.SweepEngine`, honouring ``jobs``,
      ``use_cache``/``cache_dir`` (or a pre-built ``engine``), and
      ``workload``/``workload_params`` select a registered workload.
    * **Legacy path**: when ``application_factory(seed)`` /
      ``library_factory(budget)`` or unregistered policy factories are
      given, everything runs serially in-process (closures cannot be
      cached or shipped to workers).
    """
    names = _declarative_policies(policies)
    if names is not None and application_factory is None and library_factory is None:
        params = dict(workload_params) if workload_params is not None else {}
        if workload == "h264":
            params.setdefault("frames", 8)
        eng = resolve_engine(
            engine, jobs, use_cache, cache_dir, cache_max_bytes,
            backend=backend, workers=workers, coordinator=coordinator,
        ) or SweepEngine(jobs=1, use_cache=False)
        return _run_sweep_engine(eng, budgets, seeds, names, workload, params)
    if isinstance(policies, dict):
        factories = {
            name: factory if factory is not None else POLICIES[name]
            for name, factory in policies.items()
        }
    else:
        factories = {name: POLICIES[name] for name in policies}
    return _run_sweep_legacy(
        budgets, seeds, factories, application_factory, library_factory
    )


def run_sweep_stored(
    budgets: Sequence[Tuple[int, int]],
    seeds: Sequence[int],
    policies: PolicySpec,
    *,
    store: str,
    sweep: Optional[str] = None,
    shard_rows: int = 0,
    workload: str = "h264",
    workload_params: Optional[Dict[str, object]] = None,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: Union[str, Path, None] = None,
    cache_max_bytes: Optional[int] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    coordinator: Optional[str] = None,
    engine: Optional[SweepEngine] = None,
) -> Tuple[SweepResult, str]:
    """:func:`run_sweep`, streamed through a columnar result store.

    Cells flow through ``SweepEngine.run_streamed`` into a
    :class:`~repro.results.store.ResultWriter` (bounded memory on the
    execution side), the sweep commits under ``store``/``sweep``, and the
    returned :class:`SweepResult` is rebuilt *from the stored shards* —
    so byte-identical CLI output doubles as a round-trip check.  Returns
    ``(result, sweep_path)``.  Only declarative sweeps (registered
    workload + policy names) can be stored.
    """
    from repro.results.store import DEFAULT_SHARD_ROWS, ResultReader, ResultWriter

    names = _declarative_policies(policies)
    if names is None:
        raise ReproError(
            "only declarative sweeps (registered policy names) can be "
            "streamed to a result store"
        )
    params = dict(workload_params) if workload_params is not None else {}
    if workload == "h264":
        params.setdefault("frames", 8)
    eng = resolve_engine(
        engine, jobs, use_cache, cache_dir, cache_max_bytes,
        backend=backend, workers=workers, coordinator=coordinator,
    ) or SweepEngine(jobs=1, use_cache=False)
    cells = _sweep_cells(budgets, seeds, names, workload, params)
    writer = ResultWriter(
        store,
        sweep=sweep,
        shard_rows=shard_rows or DEFAULT_SHARD_ROWS,
        meta={"workload": workload, "policies": ["risc"] + list(names)},
    )
    eng.run_streamed(cells, writer.sink)
    path = writer.close(engine_stats=eng.stats.engine_payload())
    records: List[Optional[Dict[str, object]]] = [None] * len(cells)
    for index, _, record in ResultReader(path).iter_rows():
        records[index] = record
    return (
        _points_from_records(
            dict(zip(cells, records)), budgets, seeds, names, workload, params
        ),
        path,
    )


def _sweep_cells(
    budgets: Sequence[Tuple[int, int]],
    seeds: Sequence[int],
    policy_names: Sequence[str],
    workload: str,
    workload_params: Dict[str, object],
) -> List[SweepCell]:
    """The declarative sweep's cell list, in canonical submission order."""
    cells: List[SweepCell] = []
    for budget in budgets:
        for seed in seeds:
            for name in ["risc"] + list(policy_names):
                cells.append(
                    SweepCell.make(
                        budget,
                        seed,
                        name,
                        workload=workload,
                        workload_params=workload_params,
                    )
                )
    return cells


def _run_sweep_engine(
    eng: SweepEngine,
    budgets: Sequence[Tuple[int, int]],
    seeds: Sequence[int],
    policy_names: Sequence[str],
    workload: str,
    workload_params: Dict[str, object],
) -> SweepResult:
    cells = _sweep_cells(budgets, seeds, policy_names, workload, workload_params)
    records = eng.run(cells)
    return _points_from_records(
        dict(zip(cells, records)), budgets, seeds, policy_names,
        workload, workload_params,
    )


def _points_from_records(
    per_cell: Dict[SweepCell, Dict[str, object]],
    budgets: Sequence[Tuple[int, int]],
    seeds: Sequence[int],
    policy_names: Sequence[str],
    workload: str,
    workload_params: Dict[str, object],
) -> SweepResult:
    """Assemble :class:`SweepResult` points from per-cell records."""
    result = SweepResult()
    for budget in budgets:
        for seed in seeds:
            def record_of(name: str) -> Dict[str, object]:
                return per_cell[
                    SweepCell.make(
                        budget,
                        seed,
                        name,
                        workload=workload,
                        workload_params=workload_params,
                    )
                ]

            risc_cycles = record_of("risc")["total_cycles"]
            for name in policy_names:
                record = record_of(name)
                result.points.append(
                    SweepPoint(
                        budget_label=record["budget_label"],
                        seed=seed,
                        policy=name,
                        total_cycles=record["total_cycles"],
                        speedup_vs_risc=risc_cycles / record["total_cycles"],
                        accelerated_fraction=record["accelerated_fraction"],
                        reconfigurations=record["reconfigurations"],
                    )
                )
    return result


def _run_sweep_legacy(
    budgets: Sequence[Tuple[int, int]],
    seeds: Sequence[int],
    policies: Dict[str, Callable],
    application_factory: Optional[Callable],
    library_factory: Optional[Callable],
) -> SweepResult:
    if application_factory is None:
        from repro.workloads.h264 import h264_application

        application_factory = lambda seed: h264_application(frames=8, seed=seed)
    if library_factory is None:
        from repro.workloads.h264 import h264_library

        library_factory = h264_library

    result = SweepResult()
    for cg, prc in budgets:
        budget = ResourceBudget(n_prcs=prc, n_cg_fabrics=cg)
        library = library_factory(budget)
        for seed in seeds:
            application = application_factory(seed)
            risc = Simulator(
                application, library, budget, RiscModePolicy()
            ).run().total_cycles
            for name, factory in policies.items():
                run: SimulationResult = Simulator(
                    application, library, budget, factory()
                ).run()
                result.points.append(
                    SweepPoint(
                        budget_label=budget.label,
                        seed=seed,
                        policy=name,
                        total_cycles=run.total_cycles,
                        speedup_vs_risc=risc / run.total_cycles,
                        accelerated_fraction=run.stats.accelerated_fraction(),
                        reconfigurations=run.stats.reconfigurations,
                    )
                )
    return result


__all__ = ["SweepPoint", "SweepResult", "run_sweep", "run_sweep_stored"]
