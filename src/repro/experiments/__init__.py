"""Experiments: one module per figure/table of the paper's evaluation.

Every experiment exposes a ``run_*`` function returning a structured result
object with a ``render()`` method that prints the same rows/series the
paper's figure shows.  ``repro.experiments.runner`` executes all of them
(``python -m repro.experiments``).

| Paper item | Module |
|---|---|
| Fig. 1 (pif of the case-study ISEs)        | ``fig1_pif`` |
| Fig. 2 (executions per frame)              | ``fig2_executions`` |
| Fig. 8 (comparison with the state of the art) | ``fig8_comparison`` |
| Fig. 9 (heuristic vs. optimal)             | ``fig9_optimality`` |
| Fig. 10 (speedup vs. RISC mode)            | ``fig10_speedup`` |
| Section 5.4 (mRTS overhead)                | ``overhead`` |
| Section 4.1 (search-space size)            | ``search_space`` |
| DESIGN.md ablations                        | ``ablations`` |
"""

from repro.experiments.engine import (
    POLICIES,
    SweepCell,
    SweepEngine,
    WORKLOADS,
    execute_cell,
    register_policy,
    register_workload,
)
from repro.experiments.fig1_pif import run_fig1, Fig1Result
from repro.experiments.fig2_executions import run_fig2, Fig2Result
from repro.experiments.fig5_timeline import run_fig5, Fig5Result
from repro.experiments.contention import run_contention, ContentionResult
from repro.experiments.granularity import run_granularity, GranularityResult
from repro.experiments.multitask import run_multitask, MultiTaskExperimentResult
from repro.experiments.energy import run_energy, EnergyResult
from repro.experiments.sweep import run_sweep, run_sweep_stored, SweepResult
from repro.experiments.sensitivity import run_sensitivity, SensitivityResult
from repro.experiments.fig8_comparison import run_fig8, Fig8Result
from repro.experiments.fig9_optimality import run_fig9, Fig9Result
from repro.experiments.fig10_speedup import run_fig10, Fig10Result
from repro.experiments.overhead import run_overhead, OverheadResult
from repro.experiments.search_space import run_search_space, SearchSpaceResult
from repro.experiments.ablations import run_ablations, AblationResult

__all__ = [
    "POLICIES",
    "SweepCell",
    "SweepEngine",
    "WORKLOADS",
    "execute_cell",
    "register_policy",
    "register_workload",
    "run_fig1",
    "Fig1Result",
    "run_fig2",
    "Fig2Result",
    "run_fig5",
    "Fig5Result",
    "run_contention",
    "ContentionResult",
    "run_granularity",
    "GranularityResult",
    "run_multitask",
    "MultiTaskExperimentResult",
    "run_energy",
    "EnergyResult",
    "run_sweep",
    "run_sweep_stored",
    "SweepResult",
    "run_sensitivity",
    "SensitivityResult",
    "run_fig8",
    "Fig8Result",
    "run_fig9",
    "Fig9Result",
    "run_fig10",
    "Fig10Result",
    "run_overhead",
    "OverheadResult",
    "run_search_space",
    "SearchSpaceResult",
    "run_ablations",
    "AblationResult",
]
