"""Fig. 9: the heuristic ISE selection algorithm vs. the optimal algorithm.

Runs mRTS (heuristic selector) and the online-optimal policy (identical
except for an exhaustive-equivalent selector) over the (CG 0..3, PRC 0..6)
grid and reports the percentage performance difference.  The paper's
finding: mostly negligible; within ~3 % whenever at least one CG fabric is
available; worst case ~11 % at 4 PRCs and no CG fabric, where the greedy
heuristic gives 3 of the 4 PRCs to the top kernel while the optimal
algorithm shares them between the two most important kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines import OnlineOptimalPolicy
from repro.core.mrts import MRTS
from repro.experiments.common import MatrixRunner, budget_grid
from repro.experiments.engine import SweepEngine, resolve_engine
from repro.fabric.resources import ResourceBudget
from repro.util.tables import render_table


@dataclass
class Fig9Result:
    budgets: List[ResourceBudget]
    heuristic_cycles: List[int]
    optimal_cycles: List[int]

    def percent_difference(self) -> List[float]:
        """Per combination: how much slower the heuristic is than the
        optimal selection, in percent of the heuristic's time (0 = equal;
        negative values mean the heuristic happened to win, which the
        idealised optimal model cannot rule out)."""
        return [
            100.0 * (h - o) / h if h else 0.0
            for h, o in zip(self.heuristic_cycles, self.optimal_cycles)
        ]

    def worst_case(self) -> Tuple[str, float]:
        diffs = self.percent_difference()
        worst = max(range(len(diffs)), key=lambda i: diffs[i])
        return self.budgets[worst].label, diffs[worst]

    def max_difference_with_cg(self) -> float:
        """Worst difference over combinations with at least one CG fabric."""
        return max(
            d
            for d, b in zip(self.percent_difference(), self.budgets)
            if b.n_cg_fabrics >= 1
        )

    def render(self) -> str:
        rows = [
            [b.label, h, o, round(d, 2)]
            for b, h, o, d in zip(
                self.budgets,
                self.heuristic_cycles,
                self.optimal_cycles,
                self.percent_difference(),
            )
        ]
        table = render_table(
            ["combo(CG,PRC)", "heuristic", "optimal", "diff %"],
            rows,
            title="Fig. 9: heuristic vs. optimal run-time selection",
        )
        label, worst = self.worst_case()
        return (
            f"{table}\n"
            f"worst case: {worst:.2f}% at combination {label}; "
            f"max {self.max_difference_with_cg():.2f}% when >=1 CG fabric available"
        )


def run_fig9(
    frames: int = 16,
    seed: int = 7,
    max_cg: int = 3,
    max_prc: int = 6,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    backend=None,
    workers=None,
    coordinator=None,
    engine: SweepEngine = None,
) -> Fig9Result:
    """Reproduce Fig. 9 over the (CG 0..max_cg) x (PRC 0..max_prc) grid.

    Engine flags as in :func:`repro.experiments.fig8_comparison.run_fig8`.
    """
    runner = MatrixRunner(
        frames=frames, seed=seed,
        engine=resolve_engine(engine, jobs, use_cache, cache_dir,
                              backend=backend, workers=workers,
                              coordinator=coordinator),
    )
    budgets = budget_grid(max_cg, max_prc)
    runner.prefetch(budgets, ["mrts", "online-optimal"])
    heuristic = [runner.cycles(b, MRTS) for b in budgets]
    optimal = [runner.cycles(b, OnlineOptimalPolicy) for b in budgets]
    return Fig9Result(
        budgets=budgets, heuristic_cycles=heuristic, optimal_cycles=optimal
    )


__all__ = ["run_fig9", "Fig9Result"]
