"""Section 4.1: the size of the joint ISE selection search space.

The paper motivates the heuristic with the combinatorial explosion of the
optimal algorithm: "for six kernels of the H.264 video encoder, there are
more than 78 million combinations", against which the heuristic needs only
O(N*M) profit evaluations.  This experiment counts both on the Encoding
Engine functional block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.selector import ISESelector
from repro.fabric.reconfig import ReconfigurationController
from repro.fabric.resources import ResourceBudget
from repro.sim.trigger import TriggerInstruction
from repro.util.tables import render_table
from repro.workloads.h264 import h264_application, h264_library


@dataclass
class SearchSpaceResult:
    kernels: List[str]
    candidates_per_kernel: Dict[str, int]
    combinations: int              #: prod(M_k + 1): the optimal algorithm's space
    heuristic_evaluations: int     #: profit evaluations of one greedy selection

    @property
    def reduction_factor(self) -> float:
        return self.combinations / max(1, self.heuristic_evaluations)

    def render(self) -> str:
        rows = [[k, self.candidates_per_kernel[k]] for k in self.kernels]
        table = render_table(
            ["kernel", "candidate ISEs"],
            rows,
            title="Section 4.1: selection search space (EE functional block)",
        )
        return (
            f"{table}\n"
            f"optimal algorithm combinations: {self.combinations:,}\n"
            f"heuristic profit evaluations:   {self.heuristic_evaluations:,} "
            f"({self.reduction_factor:,.0f}x fewer)"
        )


def run_search_space(
    n_cg: int = 4,
    n_prc: int = 3,
    block: str = "EE",
    frames: int = 4,
    seed: int = 7,
) -> SearchSpaceResult:
    """Count combinations vs. heuristic evaluations for one block."""
    budget = ResourceBudget(n_prcs=n_prc, n_cg_fabrics=n_cg)
    library = h264_library(budget)
    application = h264_application(frames=frames, seed=seed)
    triggers: List[TriggerInstruction] = application.profiled_triggers(block)
    kernels = [t.kernel for t in triggers]
    counts = {k: len(library.candidates(k)) for k in kernels}
    combinations = library.search_space_size(kernels)
    controller = ReconfigurationController(budget)
    result = ISESelector(library).select(triggers, controller, now=0)
    return SearchSpaceResult(
        kernels=kernels,
        candidates_per_kernel=counts,
        combinations=combinations,
        heuristic_evaluations=result.profit_evaluations,
    )


__all__ = ["run_search_space", "SearchSpaceResult"]
