"""repro: a reproduction of "mRTS: Run-Time System for Reconfigurable
Processors with Multi-Grained Instruction-Set Extensions" (DATE 2011).

The package provides:

* :mod:`repro.fabric` -- the multi-grained reconfigurable processor model
  (FG/CG fabrics, data paths, reconfiguration machinery);
* :mod:`repro.ise`    -- kernels, instruction set extensions and their
  compile-time preparation;
* :mod:`repro.core`   -- the mRTS run-time system (profit function, ISE
  selector, ECU, MPU);
* :mod:`repro.sim`    -- the cycle-level simulator and application model;
* :mod:`repro.baselines` -- the competing run-time systems of the paper's
  evaluation;
* :mod:`repro.workloads` -- the H.264 encoder workload and synthetic
  workload generators;
* :mod:`repro.experiments` -- one module per figure/table of the paper.

Quickstart::

    from repro import h264_application, h264_library, ResourceBudget
    from repro import MRTS, Simulator

    app = h264_application(frames=16, seed=7)
    budget = ResourceBudget(n_prcs=2, n_cg_fabrics=2)
    library = h264_library(budget)
    result = Simulator(app, library, budget, MRTS()).run()
    print(result.total_cycles)
"""

from repro.fabric import (
    DataPathSpec,
    DataPathImpl,
    DataPathInstance,
    FabricType,
    TechnologyCostModel,
    DEFAULT_COST_MODEL,
    ResourceBudget,
    ResourceState,
    ReconfigurationController,
)
from repro.ise import (
    Kernel,
    ISE,
    ISEBuilder,
    BuilderConfig,
    ISELibrary,
    MonoCGExtension,
    build_monocg,
)
from repro.core import (
    pif,
    ise_profit,
    ISESelector,
    OptimalSelector,
    ExecutionControlUnit,
    ExecutionMode,
    MonitoringPredictionUnit,
    MRTSConfig,
    OverheadModel,
    MRTS,
)
from repro.sim import (
    TriggerInstruction,
    KernelIteration,
    BlockIteration,
    FunctionalBlock,
    Application,
    RuntimePolicy,
    Simulator,
    SimulationResult,
)
from repro.baselines import (
    RiscModePolicy,
    RisppLikePolicy,
    Morpheus4SPolicy,
    OfflineOptimalPolicy,
    OnlineOptimalPolicy,
)
from repro.workloads import h264_application, h264_library, deblocking_case_study

__version__ = "1.0.0"

__all__ = [
    "DataPathSpec",
    "DataPathImpl",
    "DataPathInstance",
    "FabricType",
    "TechnologyCostModel",
    "DEFAULT_COST_MODEL",
    "ResourceBudget",
    "ResourceState",
    "ReconfigurationController",
    "Kernel",
    "ISE",
    "ISEBuilder",
    "BuilderConfig",
    "ISELibrary",
    "MonoCGExtension",
    "build_monocg",
    "pif",
    "ise_profit",
    "ISESelector",
    "OptimalSelector",
    "ExecutionControlUnit",
    "ExecutionMode",
    "MonitoringPredictionUnit",
    "MRTSConfig",
    "OverheadModel",
    "MRTS",
    "TriggerInstruction",
    "KernelIteration",
    "BlockIteration",
    "FunctionalBlock",
    "Application",
    "RuntimePolicy",
    "Simulator",
    "SimulationResult",
    "RiscModePolicy",
    "RisppLikePolicy",
    "Morpheus4SPolicy",
    "OfflineOptimalPolicy",
    "OnlineOptimalPolicy",
    "h264_application",
    "h264_library",
    "deblocking_case_study",
    "__version__",
]
