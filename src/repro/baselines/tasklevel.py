"""A task-level run-time coprocessor manager (after [11], Huang et al.).

Reference [11] of the paper (Huang et al., "Dynamic Coprocessor Management
for FPGA-Enhanced Compute Platforms", CASES 2008) manages reconfigurations
*at run time* but at **task level**: it decides which kernels get
coprocessors when a task (re)starts, not per functional block.  The paper's
critique: "this scheme operates at the task level and thus suffers from
inefficiency when targeting applications that exhibit adaptivity at a finer
level of granularity, e.g. at the functional block level."

We model it as a run-time policy that re-selects only every
``reselect_every_blocks`` block entries (default: once per pass over all
functional blocks x a task quantum), jointly over *all* kernels of the
application, using observed execution counts.  Kernels execute on their
full coprocessor or on the core (a loosely coupled coprocessor has no
intermediate ISEs, and monoCG-Extensions are an mRTS mechanism).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.ecu import ExecutionControlUnit, ExecutionDecision
from repro.core.mpu import MonitoringPredictionUnit
from repro.core.optimal import OptimalSelector
from repro.ise.ise import ISE
from repro.sim.policy import RuntimePolicy, SelectionOutcome
from repro.sim.program import Application
from repro.sim.trigger import TriggerInstruction
from repro.util.validation import check_positive


class TaskLevelPolicy(RuntimePolicy):
    """Run-time selection at task granularity (a [11]-like manager)."""

    name = "task-level"

    def __init__(self, reselect_every_blocks: int = 9):
        """``reselect_every_blocks``: how many functional-block entries pass
        between task-level re-decisions (9 = every three frames of the
        three-block H.264 encoder)."""
        check_positive("reselect_every_blocks", reselect_every_blocks)
        super().__init__()
        self.reselect_every_blocks = reselect_every_blocks
        self.mpu = MonitoringPredictionUnit(alpha=0.5)
        self.ecu: Optional[ExecutionControlUnit] = None
        self._application: Optional[Application] = None
        self._selection: Dict[str, Optional[ISE]] = {}
        self._blocks_seen = 0
        self._epoch = 0

    def prepare(self, application: Application) -> None:
        library, controller = self._require_attached()
        self._application = application
        self.ecu = ExecutionControlUnit(
            controller,
            library,
            enable_monocg=False,
            enable_intermediate=False,
        )

    # ------------------------------------------------------------- events
    def on_block_entry(
        self,
        block_name: str,
        profiled_triggers: Sequence[TriggerInstruction],
        now: int,
    ) -> SelectionOutcome:
        _, controller = self._require_attached()
        assert self.ecu is not None and self._application is not None
        if self._blocks_seen % self.reselect_every_blocks == 0:
            self._reselect(now)
        self._blocks_seen += 1
        block_selection = {
            trig.kernel: self._selection.get(trig.kernel)
            for trig in profiled_triggers
        }
        return SelectionOutcome(selection=block_selection)

    def _reselect(self, now: int) -> None:
        """Task-level decision: one joint selection over *all* kernels."""
        library, controller = self._require_attached()
        assert self._application is not None and self.ecu is not None
        controller.release_owner(self._owner())
        self._epoch += 1
        triggers: List[TriggerInstruction] = []
        for block in self._application.blocks:
            n_iterations = max(1, len(self._application.iterations_of(block.name)))
            for trig in self._application.profiled_triggers(block.name):
                corrected = self.mpu.forecast(block.name, trig)
                triggers.append(
                    corrected.with_forecast(
                        executions=corrected.executions * n_iterations,
                        time_to_first=corrected.time_to_first,
                        time_between=corrected.time_between,
                    )
                )
        selector = OptimalSelector(library, respect_existing=True)
        result = selector.select(triggers, controller, now)
        self._selection = dict(result.selected)
        controller.commit_selection(
            self._selection, owner=self._owner(), now=now, strict=False
        )
        self.ecu.set_selection(self._selection)

    def _owner(self) -> str:
        return f"tasklevel#{self._epoch}"

    def execute(self, kernel_name: str, now: int) -> ExecutionDecision:
        assert self.ecu is not None, "policy used before prepare()"
        return self.ecu.execute(kernel_name, now)

    def on_block_exit(
        self,
        block_name: str,
        observed: Mapping[str, Tuple[float, float, float]],
        now: int,
    ) -> None:
        for kernel, (executions, tf, tb) in observed.items():
            self.mpu.observe_iteration(
                block_name,
                kernel,
                actual_executions=executions,
                actual_time_to_first=tf,
                actual_time_between=tb,
            )


__all__ = ["TaskLevelPolicy"]
