"""Baseline run-time systems the paper compares against (Section 5.2/5.3).

* :class:`~repro.baselines.riscmode.RiscModePolicy` -- no acceleration at
  all; the reference for the speedups of Fig. 10.
* :class:`~repro.baselines.rispp.RisppLikePolicy` -- the RISPP [6] run-time
  system extended to CG fabrics: functional-block-level run-time selection
  with intermediate ISEs, but a cost function tuned to millisecond-scale FG
  reconfiguration and no monoCG-Extension.
* :class:`~repro.baselines.morpheus4s.Morpheus4SPolicy` -- Morpheus [8] /
  4S [7]-like loosely coupled systems: offline selection, each kernel bound
  to a single granularity, no intermediate ISEs.
* :class:`~repro.baselines.offline_optimal.OfflineOptimalPolicy` -- optimal
  *static* selection for tightly coupled multi-grained fabrics with perfect
  profile knowledge.
* :class:`~repro.baselines.online_optimal.OnlineOptimalPolicy` -- mRTS with
  the exhaustive-equivalent optimal selector instead of the heuristic
  (the Fig. 9 yardstick).
"""

from repro.baselines.riscmode import RiscModePolicy
from repro.baselines.rispp import RisppLikePolicy, QuantizedProfitSelector
from repro.baselines.morpheus4s import Morpheus4SPolicy
from repro.baselines.offline_optimal import OfflineOptimalPolicy
from repro.baselines.online_optimal import OnlineOptimalPolicy
from repro.baselines.tasklevel import TaskLevelPolicy

__all__ = [
    "RiscModePolicy",
    "RisppLikePolicy",
    "QuantizedProfitSelector",
    "Morpheus4SPolicy",
    "OfflineOptimalPolicy",
    "OnlineOptimalPolicy",
    "TaskLevelPolicy",
]
