"""Offline-optimal selection for tightly coupled multi-grained fabrics.

The strongest static competitor of Section 5.2: it knows the profiled
execution counts of the whole run, may use multi-grained ISEs and
intermediate ISEs (tightly coupled fabrics), distributes the fabric
optimally across all kernels, and pays no run-time overhead.  What it lacks
is exactly what mRTS adds: reaction to run-time variation and the
monoCG-Extension -- which is why mRTS still wins on average (paper: 1.45x),
with the gap shrinking as the fabric budget grows.
"""

from __future__ import annotations

from repro.baselines.static import StaticSelectionPolicy


class OfflineOptimalPolicy(StaticSelectionPolicy):
    """The second bar of Fig. 8."""

    name = "offline-optimal"

    def __init__(self) -> None:
        super().__init__(candidate_filter=None, enable_intermediate=True)


__all__ = ["OfflineOptimalPolicy"]
