"""Shared machinery of the compile-time (static) selection baselines.

Morpheus/4S-like systems and the offline-optimal comparator both decide the
fabric assignment *before* the application runs, from profiled execution
counts, and never revise it.  The whole application shares the budget
simultaneously: the offline selection distributes the reconfigurable fabric
judiciously among all kernels of all functional blocks (Section 5.2,
"Comparison with offline selection"), configures it once at start-up, and
pays no run-time selection overhead -- but cannot react to the run-time
variation of execution counts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.ecu import ExecutionControlUnit, ExecutionDecision
from repro.core.optimal import OptimalSelector
from repro.ise.ise import ISE
from repro.sim.policy import RuntimePolicy, SelectionOutcome
from repro.sim.program import Application
from repro.sim.trigger import TriggerInstruction


class StaticSelectionPolicy(RuntimePolicy):
    """Optimal compile-time selection over the whole application."""

    name = "static"

    def __init__(
        self,
        candidate_filter: Optional[Callable[[ISE], bool]] = None,
        enable_intermediate: bool = True,
    ):
        super().__init__()
        self.candidate_filter = candidate_filter
        self.enable_intermediate = enable_intermediate
        self.ecu: Optional[ExecutionControlUnit] = None
        self._selection: Dict[str, Optional[ISE]] = {}
        self._committed = False

    # ------------------------------------------------------------ offline
    def prepare(self, application: Application) -> None:
        """Compile-time phase: whole-application optimal selection."""
        library, controller = self._require_attached()
        triggers = self._application_triggers(application)
        selector = OptimalSelector(
            library,
            respect_existing=False,
            candidate_filter=self.candidate_filter,
        )
        result = selector.select(triggers, controller, now=0)
        self._selection = dict(result.selected)
        self.ecu = ExecutionControlUnit(
            controller,
            library,
            enable_monocg=False,  # the monoCG-Extension is an mRTS feature
            enable_intermediate=self.enable_intermediate,
        )
        self.ecu.set_selection(self._selection)
        self._committed = False

    @staticmethod
    def _application_triggers(application: Application) -> List[TriggerInstruction]:
        """Whole-run forecast per kernel: profiled per-iteration numbers
        scaled by how often the kernel's block iterates."""
        triggers: List[TriggerInstruction] = []
        for block in application.blocks:
            n_iterations = len(application.iterations_of(block.name))
            for trig in application.profiled_triggers(block.name):
                triggers.append(
                    trig.with_forecast(
                        executions=trig.executions * max(1, n_iterations),
                        time_to_first=trig.time_to_first,
                        time_between=trig.time_between,
                    )
                )
        return triggers

    # ------------------------------------------------------------- events
    def on_block_entry(
        self,
        block_name: str,
        profiled_triggers: Sequence[TriggerInstruction],
        now: int,
    ) -> SelectionOutcome:
        _, controller = self._require_attached()
        if not self._committed:
            # Start-up: configure the static selection once.  A compile-time
            # selection cannot anticipate fabric claimed by other tasks at
            # run time, so kernels whose ISE no longer fits simply lose it
            # (non-strict commit) -- the inflexibility the paper criticises.
            controller.commit_selection(
                self._selection, owner="static", now=now, strict=False
            )
            self._committed = True
        block_selection = {
            trig.kernel: self._selection.get(trig.kernel)
            for trig in profiled_triggers
        }
        return SelectionOutcome(selection=block_selection)

    def execute(self, kernel_name: str, now: int) -> ExecutionDecision:
        assert self.ecu is not None, "policy used before prepare()"
        return self.ecu.execute(kernel_name, now)


__all__ = ["StaticSelectionPolicy"]
