"""A RISPP-like run-time system extended to coarse-grained fabrics.

RISPP [6] pioneered run-time ISE selection at functional-block level with
intermediate ISEs ("molecules" assembled from "atoms"), but only for the
fine-grained fabric.  The paper extends RISPP's selection to CG fabrics for
a direct comparison (Section 5.2) and attributes its inefficiency on
multi-grained ISEs to its cost function: "these approaches are aimed to
optimize considering the longer reconfiguration time of the fine-grained
reconfigurable fabric (in ms), thus they do not provide good results when
considering the significantly less reconfiguration time (in us) of
coarse-grained fabrics."

We model that mis-tuning faithfully: the RISPP-like profit function
*quantises every reconfiguration time up to whole FG reconfiguration slots*
(its internal arithmetic is built around the FG bitstream port), so the
microsecond availability of CG data paths is invisible to its selection.
The ECU cascade is the same as mRTS's minus the monoCG-Extension, which is
an mRTS contribution.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.core.config import MRTSConfig
from repro.core.mrts import MRTS
from repro.core.selector import ISESelector, predict_recT
from repro.core.profit import ise_profit
from repro.ise.ise import ISE
from repro.ise.library import ISELibrary
from repro.sim.trigger import TriggerInstruction
from repro.util.units import kb_to_reconfig_cycles
from repro.util.validation import check_positive

#: One FG reconfiguration slot: the port time of a standard data path.
FG_RECONFIG_SLOT_CYCLES = kb_to_reconfig_cycles(79.2)


class QuantizedProfitSelector(ISESelector):
    """The Fig. 6 greedy loop with an FG-granular cost function."""

    def __init__(self, library: ISELibrary, slot_cycles: int = FG_RECONFIG_SLOT_CYCLES):
        super().__init__(library)
        check_positive("slot_cycles", slot_cycles)
        self.slot_cycles = slot_cycles

    def _profit_of(
        self,
        ise: ISE,
        trig: TriggerInstruction,
        coverage: Mapping[str, int],
        existing_ready: Mapping[str, float],
        now: int,
        fg_port_free_at: float,
    ) -> Tuple[float, List[float], float]:
        schedule, port_after = predict_recT(
            ise, coverage, existing_ready, now, fg_port_free_at
        )
        # The mis-tuned arithmetic: every completion time is rounded up to
        # whole FG slots, hiding the microsecond CG reconfigurations.
        quantized: List[float] = []
        for t in schedule:
            slots = math.ceil(t / self.slot_cycles) if t > 0 else 0
            quantized.append(max(float(t), slots * float(self.slot_cycles)))
        for i in range(1, len(quantized)):
            quantized[i] = max(quantized[i], quantized[i - 1])
        # RISPP's benefit curves ignore the inter-execution gap (tb = 0):
        # against millisecond reconfigurations that term is negligible, but
        # for multi-grained ISEs it distorts how many executions land on
        # each intermediate ISE.
        breakdown = ise_profit(
            ise,
            e=trig.executions,
            tf=trig.time_to_first,
            tb=0.0,
            rec_schedule=quantized,
        )
        # The *committed* schedule is the real one; only the decision uses
        # the quantized view.
        return breakdown.profit, schedule, port_after


class RisppLikePolicy(MRTS):
    """RISPP [6] extended to CG fabrics, as modelled by the paper."""

    name = "rispp"

    def __init__(self, config: Optional[MRTSConfig] = None):
        base = config or MRTSConfig()
        # RISPP has no monoCG-Extension; everything else (MPU-style forecast
        # updates, intermediate ISEs, FB-level selection) it pioneered.
        super().__init__(
            MRTSConfig(
                mpu_alpha=base.mpu_alpha,
                mpu_window=base.mpu_window,
                enable_intermediate=base.enable_intermediate,
                enable_monocg=False,
                monocg_breakeven_cycles=base.monocg_breakeven_cycles,
                hide_selection_overhead=base.hide_selection_overhead,
                overhead=base.overhead,
            )
        )

    def attach(self, library, controller) -> None:
        super().attach(library, controller)
        self.selector = QuantizedProfitSelector(library)


__all__ = ["RisppLikePolicy", "QuantizedProfitSelector", "FG_RECONFIG_SLOT_CYCLES"]
