"""Online-optimal selection: the run-time yardstick of Fig. 9.

Identical to mRTS (same MPU, same ECU cascade including monoCG-Extensions,
same functional-block granularity) but with the *optimal* selection
algorithm instead of the O(N*M) heuristic.  Its computational cost would be
prohibitive on real hardware (>78 million combinations for six kernels), so
the paper -- and this reproduction -- charge it zero selection overhead and
use it purely to measure the optimality gap of the heuristic.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.config import MRTSConfig, OverheadModel
from repro.core.mrts import MRTS
from repro.core.optimal import OptimalSelector


class _FreeOverhead(OverheadModel):
    """Overhead model that charges nothing (idealised optimal selector)."""

    def full_cycles(self, result) -> int:  # noqa: D102 - see class docstring
        return 0

    def charged_cycles(self, result, hidden: bool = True) -> int:  # noqa: D102
        return 0


class OnlineOptimalPolicy(MRTS):
    """mRTS with the exhaustive-equivalent optimal ISE selector."""

    name = "online-optimal"

    def __init__(self, config: Optional[MRTSConfig] = None):
        base = config or MRTSConfig()
        super().__init__(
            MRTSConfig(
                mpu_alpha=base.mpu_alpha,
                mpu_window=base.mpu_window,
                enable_intermediate=base.enable_intermediate,
                enable_monocg=base.enable_monocg,
                monocg_breakeven_cycles=base.monocg_breakeven_cycles,
                hide_selection_overhead=True,
                overhead=_FreeOverhead(),
            )
        )

    def attach(self, library, controller) -> None:
        super().attach(library, controller)
        self.selector = OptimalSelector(library, respect_existing=True)


__all__ = ["OnlineOptimalPolicy"]
