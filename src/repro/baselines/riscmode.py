"""Pure RISC-mode execution: the speedup reference of the evaluation.

Every kernel executes using the basic instruction set of the core processor
(footnote 3 of the paper); the reconfigurable fabrics stay dark.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.ecu import ExecutionDecision, ExecutionMode, ExecutionRun
from repro.sim.policy import RuntimePolicy, SelectionOutcome
from repro.sim.trigger import TriggerInstruction


class RiscModePolicy(RuntimePolicy):
    """No acceleration: the first bar/combination of Figs. 8 and 10."""

    name = "risc"

    def on_block_entry(
        self,
        block_name: str,
        profiled_triggers: Sequence[TriggerInstruction],
        now: int,
    ) -> SelectionOutcome:
        return SelectionOutcome()

    def execute(self, kernel_name: str, now: int) -> ExecutionDecision:
        library, _ = self._require_attached()
        kernel = library.kernel(kernel_name)
        return ExecutionDecision(
            kernel=kernel_name,
            mode=ExecutionMode.RISC,
            latency=kernel.risc_latency,
            level=0,
        )

    def execute_run(
        self,
        kernel_name: str,
        now: int,
        max_executions: int,
        gap: int,
    ) -> ExecutionRun:
        """RISC latency is time-invariant, so a whole run is one decision."""
        return ExecutionRun(
            decision=self.execute(kernel_name, now),
            count=max_executions,
            horizon=float("inf"),
        )


__all__ = ["RiscModePolicy"]
