"""Morpheus [8] / 4S [7]-like loosely coupled multi-grained systems.

Both projects assign fabrics to tasks/kernels at *compile time*, and their
loose coupling (limited communication between the CG and FG fabric) means a
kernel executes entirely on one granularity: "no multi-grained ISE can be
used within a functional block" (Section 5.2).  We model this as an optimal
offline selection restricted to single-granularity ISEs, executed without
intermediate ISEs (a loosely coupled coprocessor runs the kernel only once
its full configuration is present).
"""

from __future__ import annotations

from repro.baselines.static import StaticSelectionPolicy
from repro.ise.ise import ISE


def _single_granularity(ise: ISE) -> bool:
    return not ise.is_multigrained


class Morpheus4SPolicy(StaticSelectionPolicy):
    """The third bar of Fig. 8."""

    name = "morpheus4s"

    def __init__(self) -> None:
        super().__init__(
            candidate_filter=_single_granularity,
            enable_intermediate=False,
        )


__all__ = ["Morpheus4SPolicy"]
