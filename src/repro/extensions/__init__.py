"""Extensions beyond the published mRTS.

The paper hides the selector's computation behind the reconfiguration
process (Section 5.4); :mod:`repro.extensions.lookahead` takes the next
step the paper's machinery enables but does not evaluate: hide the
*reconfigurations themselves* behind the previous functional block by
prefetching the next block's likely FG data paths onto currently free
fabric.
"""

from repro.extensions.lookahead import LookaheadMRTS

__all__ = ["LookaheadMRTS"]
