"""Lookahead mRTS: prefetch the next functional block's FG data paths.

mRTS pays the millisecond FG reconfigurations at the *start* of each
functional block: the first executions run in RISC mode / on
monoCG-Extensions until the bitstream port catches up (Fig. 5).  But while
block ``i`` executes, the port is often idle and some fabric is free -- and
the block sequence of a streaming application is perfectly predictable
(ME -> EE -> LF -> ME -> ...).

:class:`LookaheadMRTS` exploits that: at every block entry it additionally
*predicts* the selection of the next block (same selector, MPU-corrected
triggers) and enqueues the FG data paths of that selection on whatever
fabric is free.  Prefetched configurations are left unpinned -- they are
opportunistic, and a later, better-informed selection may cancel their
pending transfers or evict them; when their block arrives, the regular
selection picks them up as zero-cost coverage.

This is an *extension*: the paper only hides the selector's computation
behind reconfigurations (Section 5.4), not the reconfigurations themselves
behind the previous block.  The ablation bench quantifies what it buys.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import MRTSConfig
from repro.core.mrts import MRTS
from repro.fabric.datapath import FabricType
from repro.ise.ise import ISE
from repro.sim.policy import SelectionOutcome
from repro.sim.program import Application
from repro.sim.trigger import TriggerInstruction


class LookaheadMRTS(MRTS):
    """mRTS plus cross-block FG reconfiguration prefetching.

    ``allow_eviction`` controls how aggressively the prefetcher claims
    fabric: ``False`` (default) only uses strictly free PRCs; ``True`` also
    evicts unpinned leftovers of older blocks.  Measured result on the
    H.264 sweep (see ``bench_lookahead.py``): the conservative variant
    stays within ~2 % of plain mRTS, the aggressive one swings a few percent
    either way -- the per-block profit function already keeps the expensive
    FG configurations stable across iterations (Step 2b coverage), so a
    predictor has little left to prefetch, and pending-transfer cancellation
    makes mispredictions cheap.  A negative result worth keeping
    reproducible: cross-block prefetching is **not** the easy win it looks
    like in this architecture.
    """

    name = "mrts-lookahead"

    def __init__(
        self,
        config: Optional[MRTSConfig] = None,
        allow_eviction: bool = False,
    ):
        super().__init__(config)
        self.allow_eviction = allow_eviction
        self._block_sequence: List[str] = []
        self._profiled: Dict[str, List[TriggerInstruction]] = {}
        self._entry_index = -1
        self._prefetch_epoch = 0
        self.prefetched_instances = 0

    # ------------------------------------------------------------- set-up
    def prepare(self, application: Application) -> None:
        super().prepare(application)
        self._block_sequence = [it.block for it in application.iterations]
        self._profiled = {
            block.name: application.profiled_triggers(block.name)
            for block in application.blocks
        }

    # ------------------------------------------------------------- events
    def on_block_entry(
        self,
        block_name: str,
        profiled_triggers: Sequence[TriggerInstruction],
        now: int,
    ) -> SelectionOutcome:
        # Release the previous prefetch pins: the paths stay configured and
        # the regular selection will pick them up as zero-cost coverage.
        _, controller = self._require_attached()
        controller.release_owner(self._prefetch_owner())
        self._entry_index += 1

        outcome = super().on_block_entry(block_name, profiled_triggers, now)

        next_block = self._next_block_name()
        if next_block is not None:
            self._prefetch_for(next_block, now)
        return outcome

    # ------------------------------------------------------------ helpers
    def _next_block_name(self) -> Optional[str]:
        index = self._entry_index + 1
        if 0 <= index < len(self._block_sequence):
            return self._block_sequence[index]
        return None

    def _prefetch_owner(self) -> str:
        return f"prefetch#{self._prefetch_epoch}"

    def _prefetch_for(self, block_name: str, now: int) -> None:
        """Predict the next block's selection and prefetch its FG paths."""
        _, controller = self._require_attached()
        assert self.selector is not None
        profiled = self._profiled.get(block_name)
        if not profiled:
            return
        corrected = [self.mpu.forecast(block_name, trig) for trig in profiled]
        prediction = self.selector.select(corrected, controller, now)
        self._prefetch_epoch += 1
        owner = self._prefetch_owner()
        prefetched_any = False
        for ise in prediction.selected.values():
            if ise is None:
                continue
            for instance in ise.instances:
                if instance.fabric is not FabricType.FG:
                    continue  # CG contexts load in microseconds anyway
                missing = instance.quantity - controller.resources.configured_quantity(
                    instance.impl.name
                )
                if missing <= 0:
                    # Already on the fabric: keep it there for the handover.
                    controller.resources.pin(
                        instance.impl.name, instance.quantity, owner
                    )
                    continue
                # How much fabric may the prefetcher claim?  Strictly free
                # area by default; with allow_eviction also the unpinned
                # leftovers of older blocks (see the class docstring for why
                # that is usually a bad trade).
                if self.allow_eviction:
                    available = controller.resources.allocatable_area(
                        instance.fabric, now
                    )
                else:
                    available = controller.resources.free_area(instance.fabric)
                affordable = min(missing, available // max(1, instance.impl.area))
                if affordable <= 0:
                    continue
                from repro.fabric.datapath import DataPathInstance

                # ensure_configured takes a *total* quantity: existing copies
                # plus the new prefetches.
                total_quantity = (
                    controller.resources.configured_quantity(instance.impl.name)
                    + affordable
                )
                controller.ensure_configured(
                    [DataPathInstance(instance.impl, quantity=total_quantity)],
                    owner=owner,
                    now=now,
                )
                self.prefetched_instances += affordable
                prefetched_any = True
        # Prefetches are opportunistic: release the pins immediately so a
        # later (better-informed) selection can cancel the pending transfers
        # or evict the copies.  The pin only existed to keep this prefetch
        # round internally consistent.
        controller.release_owner(owner)


__all__ = ["LookaheadMRTS"]
