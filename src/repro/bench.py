"""Selector hot-path microbenchmark: naive vs. incremental, A/B measured.

Runs the mRTS policy over the Fig. 8 reference workload (the H.264 encoder
on the (CG fabrics x PRCs) budget grid) once per selector implementation
and reports the evaluation counters and wall time side by side.  The run
doubles as an equivalence check: the per-budget stats payloads of both
modes must be byte-identical, and the incremental selector must never
compute more profits than the naive one -- :func:`main` exits non-zero
otherwise, which is what the verify script's smoke job relies on.

The JSON written by ``repro bench`` / ``python benchmarks/bench_selector.py``
(``BENCH_selector.json`` by default) is the start of the perf trajectory:
each entry is one selector implementation's totals over the grid.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MRTSConfig
from repro.core.mrts import MRTS
from repro.core.selector import SELECTOR_MODES
from repro.fabric.resources import ResourceBudget
from repro.sim.simulator import Simulator
from repro.workloads.h264 import h264_application, h264_library

#: The Fig. 8 budget grid (CG fabrics 0..4 x PRCs 0..3).
FIG8_BUDGETS: Tuple[Tuple[int, int], ...] = tuple(
    (cg, prc) for cg in range(5) for prc in range(4)
)

#: Representative cut of the grid for the quick smoke run.
QUICK_BUDGETS: Tuple[Tuple[int, int], ...] = ((1, 1), (2, 2), (3, 2))


def run_selector_bench(
    frames: int = 16,
    seed: int = 7,
    budgets: Optional[Sequence[Tuple[int, int]]] = None,
    quick: bool = False,
) -> Dict[str, object]:
    """Benchmark both selector implementations on the fig8 workload.

    Returns a JSON-able payload with per-mode counter totals, wall times,
    the profit-evaluation reduction factor and the equivalence verdict.
    """
    if budgets is None:
        budgets = QUICK_BUDGETS if quick else FIG8_BUDGETS
    if quick:
        frames = min(frames, 4)
    application = h264_application(frames=frames, seed=seed)

    modes: Dict[str, Dict[str, object]] = {}
    payloads: Dict[str, List[Dict[str, object]]] = {}
    for mode in SELECTOR_MODES:
        totals = {
            "profit_evaluations": 0,
            "evaluations_recomputed": 0,
            "evaluations_skipped": 0,
            "evaluations_pruned": 0,
            "selector_invalidations": 0,
            "selector_rounds": 0,
            "selections": 0,
            "total_cycles": 0,
        }
        payloads[mode] = []
        started = time.perf_counter()
        for cg, prc in budgets:
            budget = ResourceBudget(n_prcs=prc, n_cg_fabrics=cg)
            library = h264_library(budget)
            policy = MRTS(MRTSConfig(selector_mode=mode))
            result = Simulator(application, library, budget, policy).run()
            stats = result.stats
            payloads[mode].append(stats.to_payload())
            totals["profit_evaluations"] += stats.profit_evaluations
            totals["evaluations_recomputed"] += stats.evaluations_recomputed
            totals["evaluations_skipped"] += stats.evaluations_skipped
            totals["evaluations_pruned"] += stats.evaluations_pruned
            totals["selector_invalidations"] += stats.selector_invalidations
            totals["selector_rounds"] += stats.selector_rounds
            totals["selections"] += stats.selections
            totals["total_cycles"] += stats.total_cycles
        wall = time.perf_counter() - started
        logical = totals["profit_evaluations"]
        avoided = totals["evaluations_skipped"] + totals["evaluations_pruned"]
        modes[mode] = dict(
            totals,
            wall_seconds=round(wall, 4),
            cache_hit_rate=(avoided / logical) if logical else 0.0,
        )

    naive = modes["naive"]
    incremental = modes["incremental"]
    identical = payloads["naive"] == payloads["incremental"]
    recomputed = incremental["evaluations_recomputed"]
    reduction = (
        naive["evaluations_recomputed"] / recomputed
        if recomputed
        else float("inf")
    )
    return {
        "benchmark": "selector",
        "workload": "h264 fig8 grid",
        "frames": frames,
        "seed": seed,
        "budgets": [list(b) for b in budgets],
        "quick": quick,
        "modes": modes,
        "identical_results": identical,
        "evaluation_reduction_factor": round(reduction, 3),
    }


def render(payload: Dict[str, object]) -> str:
    """Human-readable summary of a bench payload."""
    lines = [
        f"selector bench on {payload['workload']} "
        f"(frames={payload['frames']}, seed={payload['seed']}, "
        f"{len(payload['budgets'])} budgets)"
    ]
    for mode, totals in payload["modes"].items():
        lines.append(
            f"  {mode:11s} recomputed={totals['evaluations_recomputed']:,} "
            f"skipped={totals['evaluations_skipped']:,} "
            f"pruned={totals['evaluations_pruned']:,} "
            f"of {totals['profit_evaluations']:,} logical "
            f"({totals['wall_seconds']}s)"
        )
    lines.append(
        f"  reduction: {payload['evaluation_reduction_factor']}x fewer "
        f"profit computations; identical results: "
        f"{payload['identical_results']}"
    )
    return "\n".join(lines)


def check_gate(payload: Dict[str, object]) -> List[str]:
    """The regression conditions the verify smoke job enforces.

    Returns a list of failure messages (empty = pass): the two selector
    implementations must produce byte-identical stats, and the incremental
    one must not compute more profits than the naive one.
    """
    failures = []
    if not payload["identical_results"]:
        failures.append("naive and incremental selector stats differ")
    naive = payload["modes"]["naive"]["evaluations_recomputed"]
    incremental = payload["modes"]["incremental"]["evaluations_recomputed"]
    if incremental > naive:
        failures.append(
            f"incremental selector recomputed more profits than naive "
            f"({incremental} > {naive})"
        )
    return failures


def main(argv=None) -> int:
    """CLI entry point: run the bench, write the JSON payload, gate."""
    import argparse

    parser = argparse.ArgumentParser(
        description="benchmark the naive vs. incremental ISE selector"
    )
    parser.add_argument("--quick", action="store_true",
                        help="small frame count and budget cut (CI smoke)")
    parser.add_argument("--frames", type=int, default=16)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_selector.json",
                        help="where to write the JSON payload")
    args = parser.parse_args(argv)

    payload = run_selector_bench(
        frames=args.frames, seed=args.seed, quick=args.quick
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render(payload))
    print(f"wrote {args.out}")
    failures = check_gate(payload)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


__all__ = [
    "FIG8_BUDGETS",
    "QUICK_BUDGETS",
    "check_gate",
    "main",
    "render",
    "run_selector_bench",
]
