"""A/B microbenchmarks of the reproduction's hot paths.

Five suites -- four over the Fig. 8 reference workload (the H.264
encoder on the (CG fabrics x PRCs) budget grid), one over a synthetic
sweep -- all doubling as regression gates:

* ``selector`` -- naive vs. incremental vs. packed ISE selector:
  per-budget stats payloads must be byte-identical across all three and
  the incremental implementation must never compute more profits than the
  naive one (``BENCH_selector.json``).
* ``sim`` -- stepped vs. event-driven vs. packed execution engine:
  per-budget stats payloads must be byte-identical across all three, the
  event engine must evaluate the ECU cascade at least
  :data:`SIM_REDUCTION_THRESHOLD` times less often, and the packed engine
  must beat the stepped engine's per-cell wall clock by at least
  :data:`PACKED_SPEEDUP_THRESHOLD` (``BENCH_sim.json``).
* ``engine`` -- serial vs. pool vs. distributed sweep executor backends:
  cell records must be byte-identical across all three, and the per-worker
  construction memos must cut application builds + library compiles by at
  least :data:`ENGINE_REDUCTION_THRESHOLD` on the serial backend
  (``BENCH_engine.json``).
* ``service`` -- the always-on sweep daemon vs. one-shot fleets: four
  concurrent submissions of the same sweep through one ``repro serve``
  daemon must finish at least :data:`SERVICE_THROUGHPUT_THRESHOLD` times
  faster in aggregate than the same four sweeps run sequentially through
  one-shot distributed backends, byte-identical to serial throughout
  (``BENCH_service.json``).  The win comes from sharing one worker fleet
  and serving repeats from the in-flight table and the network store.
  A second phase replays store-served jobs over both wire encodings:
  the negotiated binary columnar wire must shrink the client's transport
  bytes by :data:`WIRE_BYTES_THRESHOLD` and lift job throughput by
  :data:`WIRE_THROUGHPUT_THRESHOLD` over plain JSON frames.
* ``store`` -- in-memory result aggregation vs. the columnar result
  store: a deterministic synthetic sweep is aggregated once from a fully
  materialised row list and once streamed through
  ``ResultWriter``/``ResultReader``; stored rows must round-trip
  byte-identically, the two KPI summaries must match exactly, and the
  streamed leg's peak traced memory must beat the in-memory baseline by
  at least :data:`STORE_MEMORY_THRESHOLD` (``BENCH_store.json``).

:func:`main` (also reachable as ``repro bench --suite ...`` and via the
``benchmarks/bench_selector.py`` / ``benchmarks/bench_sim.py`` /
``benchmarks/bench_engine.py`` wrappers) exits non-zero when a gate
fails, which is what the verify script's smoke jobs rely on.
"""

from __future__ import annotations

import gc
import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MRTSConfig
from repro.core.mrts import MRTS
from repro.core.selector import SELECTOR_MODES
from repro.fabric.resources import ResourceBudget
from repro.sim.simulator import ENGINE_MODES, Simulator
from repro.workloads.h264 import h264_application, h264_library

#: The Fig. 8 budget grid (CG fabrics 0..4 x PRCs 0..3).
FIG8_BUDGETS: Tuple[Tuple[int, int], ...] = tuple(
    (cg, prc) for cg in range(5) for prc in range(4)
)

#: Representative cut of the grid for the quick smoke run.
QUICK_BUDGETS: Tuple[Tuple[int, int], ...] = ((1, 1), (2, 2), (3, 2))

#: Minimum factor by which the event engine must reduce ECU cascade calls
#: on the fig8 reference grid (the sim suite's perf gate).
SIM_REDUCTION_THRESHOLD = 5.0

#: Minimum per-cell wall-clock speedup of the packed engine over the
#: stepped reference on the full fig8 grid (the sim suite's second perf
#: gate; measured ~15x on the reference machine).
PACKED_SPEEDUP_THRESHOLD = 10.0

#: Quick-run relaxation of the packed gate: tiny frame counts leave the
#: fixed per-run costs (library compile, selector set-up, packing)
#: dominant, so the smoke job only asserts a conservative floor.
PACKED_SPEEDUP_THRESHOLD_QUICK = 2.0

#: Minimum factor by which the construction memos must cut application
#: builds + library compiles on the fig8 grid (the engine suite's gate,
#: measured on the serial backend where all cells share one memo).
ENGINE_REDUCTION_THRESHOLD = 3.0

#: Backends exercised by the engine suite, reference first.
ENGINE_BACKENDS = ("serial", "pool", "distributed")

#: Minimum aggregate-throughput factor of N concurrent sweeps through the
#: always-on daemon over the same N sweeps run sequentially through
#: one-shot distributed fleets (the service suite's gate).
SERVICE_THROUGHPUT_THRESHOLD = 1.5

#: Synthetic cells the store suite streams (full / quick tiers).
STORE_CELLS = 10_000
STORE_CELLS_QUICK = 1_000

#: Rows per columnar shard in the store suite (small enough that the
#: writer's buffer is a tiny fraction of the sweep).
STORE_SHARD_ROWS = 256

#: Minimum peak-traced-memory ratio of in-memory aggregation over
#: store-streamed aggregation at :data:`STORE_CELLS` cells (the store
#: suite's perf gate; measured ~40x on the reference machine).
STORE_MEMORY_THRESHOLD = 5.0

#: Quick-tier relaxation: at 10^3 cells fixed overheads (interpreter,
#: tracemalloc bookkeeping, shard buffers) weigh more, so the smoke job
#: only asserts a conservative floor.
STORE_MEMORY_THRESHOLD_QUICK = 2.0

#: Concurrent submissions the service suite drives.
SERVICE_SWEEPS = 4

#: Minimum factor by which the negotiated binary wire must shrink the
#: transport bytes (sent + received at the client) of a store-served
#: repeat job versus the same job over plain JSON frames.
WIRE_BYTES_THRESHOLD = 3.0

#: Minimum end-to-end job-throughput factor of the binary wire over the
#: JSON wire on the same store-served repeat jobs (coalesced blocks cut
#: the per-cell frame encode/flush/decode cost).
WIRE_THROUGHPUT_THRESHOLD = 1.3

#: Each wire-phase job tiles the grid's cell payloads this many times, so
#: the streamed result traffic dominates the fixed handshake/accept cost.
WIRE_TILE = 200

#: Store-served repeat jobs per wire mode.  The throughput gate compares
#: the *fastest* job per mode: identical work each time means the min is
#: the transport cost and everything above it is scheduler/housekeeping
#: noise that would otherwise need many more repetitions to average out.
WIRE_JOBS = 3


def run_selector_bench(
    frames: int = 16,
    seed: int = 7,
    budgets: Optional[Sequence[Tuple[int, int]]] = None,
    quick: bool = False,
) -> Dict[str, object]:
    """Benchmark both selector implementations on the fig8 workload.

    Returns a JSON-able payload with per-mode counter totals, wall times,
    the profit-evaluation reduction factor and the equivalence verdict.
    """
    if budgets is None:
        budgets = QUICK_BUDGETS if quick else FIG8_BUDGETS
    if quick:
        frames = min(frames, 4)
    application = h264_application(frames=frames, seed=seed)

    modes: Dict[str, Dict[str, object]] = {}
    payloads: Dict[str, List[Dict[str, object]]] = {}
    for mode in SELECTOR_MODES:
        totals = {
            "profit_evaluations": 0,
            "evaluations_recomputed": 0,
            "evaluations_skipped": 0,
            "evaluations_pruned": 0,
            "selector_invalidations": 0,
            "selector_rounds": 0,
            "selections": 0,
            "total_cycles": 0,
        }
        payloads[mode] = []
        started = time.perf_counter()
        for cg, prc in budgets:
            budget = ResourceBudget(n_prcs=prc, n_cg_fabrics=cg)
            library = h264_library(budget)
            policy = MRTS(MRTSConfig(selector_mode=mode))
            result = Simulator(application, library, budget, policy).run()
            stats = result.stats
            payloads[mode].append(stats.to_payload())
            totals["profit_evaluations"] += stats.profit_evaluations
            totals["evaluations_recomputed"] += stats.evaluations_recomputed
            totals["evaluations_skipped"] += stats.evaluations_skipped
            totals["evaluations_pruned"] += stats.evaluations_pruned
            totals["selector_invalidations"] += stats.selector_invalidations
            totals["selector_rounds"] += stats.selector_rounds
            totals["selections"] += stats.selections
            totals["total_cycles"] += stats.total_cycles
        wall = time.perf_counter() - started
        logical = totals["profit_evaluations"]
        avoided = totals["evaluations_skipped"] + totals["evaluations_pruned"]
        modes[mode] = dict(
            totals,
            wall_seconds=round(wall, 4),
            cache_hit_rate=(avoided / logical) if logical else 0.0,
        )

    naive = modes["naive"]
    incremental = modes["incremental"]
    identical = all(
        payloads[mode] == payloads[SELECTOR_MODES[0]]
        for mode in SELECTOR_MODES
    )
    recomputed = incremental["evaluations_recomputed"]
    reduction = (
        naive["evaluations_recomputed"] / recomputed
        if recomputed
        else float("inf")
    )
    return {
        "benchmark": "selector",
        "workload": "h264 fig8 grid",
        "frames": frames,
        "seed": seed,
        "budgets": [list(b) for b in budgets],
        "quick": quick,
        "modes": modes,
        "identical_results": identical,
        "evaluation_reduction_factor": round(reduction, 3),
    }


def run_sim_bench(
    frames: int = 16,
    seed: int = 7,
    budgets: Optional[Sequence[Tuple[int, int]]] = None,
    quick: bool = False,
) -> Dict[str, object]:
    """Benchmark both execution engines on the fig8 workload.

    Runs the mRTS policy over the budget grid once per engine and returns
    a JSON-able payload with per-engine counter totals, wall times, the
    ECU-call reduction factor and the equivalence verdict.
    """
    if budgets is None:
        budgets = QUICK_BUDGETS if quick else FIG8_BUDGETS
    if quick:
        frames = min(frames, 4)
    application = h264_application(frames=frames, seed=seed)

    engines: Dict[str, Dict[str, object]] = {}
    payloads: Dict[str, List[Dict[str, object]]] = {}
    for engine in ENGINE_MODES:
        totals = {
            "ecu_calls": 0,
            "executions_fastforwarded": 0,
            "events_processed": 0,
            "total_executions": 0,
            "total_cycles": 0,
        }
        payloads[engine] = []
        started = time.perf_counter()
        for cg, prc in budgets:
            budget = ResourceBudget(n_prcs=prc, n_cg_fabrics=cg)
            library = h264_library(budget)
            policy = MRTS(MRTSConfig())
            result = Simulator(
                application, library, budget, policy, engine=engine
            ).run()
            stats = result.stats
            payloads[engine].append(stats.to_payload())
            totals["ecu_calls"] += stats.ecu_calls
            totals["executions_fastforwarded"] += (
                stats.executions_fastforwarded
            )
            totals["events_processed"] += stats.events_processed
            totals["total_executions"] += stats.total_executions
            totals["total_cycles"] += stats.total_cycles
        wall = time.perf_counter() - started
        executions = totals["total_executions"]
        engines[engine] = dict(
            totals,
            wall_seconds=round(wall, 4),
            fastforward_fraction=(
                totals["executions_fastforwarded"] / executions
                if executions
                else 0.0
            ),
        )

    stepped = engines["stepped"]
    event = engines["event"]
    packed = engines["packed"]
    identical = all(
        payloads[engine] == payloads[ENGINE_MODES[0]]
        for engine in ENGINE_MODES
    )
    event_calls = event["ecu_calls"]
    reduction = (
        stepped["ecu_calls"] / event_calls if event_calls else float("inf")
    )
    packed_wall = packed["wall_seconds"]
    packed_speedup = (
        stepped["wall_seconds"] / packed_wall if packed_wall else float("inf")
    )
    return {
        "benchmark": "sim",
        "workload": "h264 fig8 grid",
        "frames": frames,
        "seed": seed,
        "budgets": [list(b) for b in budgets],
        "quick": quick,
        "engines": engines,
        "identical_results": identical,
        "ecu_call_reduction_factor": round(reduction, 3),
        "reduction_threshold": SIM_REDUCTION_THRESHOLD,
        "packed_speedup": round(packed_speedup, 3),
        "packed_speedup_threshold": (
            PACKED_SPEEDUP_THRESHOLD_QUICK if quick
            else PACKED_SPEEDUP_THRESHOLD
        ),
    }


def run_engine_bench(
    frames: int = 16,
    seed: int = 7,
    budgets: Optional[Sequence[Tuple[int, int]]] = None,
    quick: bool = False,
) -> Dict[str, object]:
    """Benchmark every executor backend on the fig8 sweep grid.

    Runs the same (budget x policy) cell grid through each backend of a
    fresh :class:`~repro.experiments.engine.SweepEngine` (cache off, memos
    cleared per backend so counters are comparable) and returns a
    JSON-able payload with per-backend engine counters, wall times, the
    construction-reduction factor and the equivalence verdict.
    """
    from repro.experiments.engine import SweepCell, SweepEngine, clear_build_memo

    if budgets is None:
        budgets = QUICK_BUDGETS if quick else FIG8_BUDGETS
    if quick:
        frames = min(frames, 4)
    policies = ("risc", "rispp", "offline-optimal", "morpheus4s", "mrts")
    cells = [
        SweepCell.make(
            (cg, prc), seed, policy,
            workload="h264", workload_params={"frames": frames},
        )
        for cg, prc in budgets
        for policy in policies
    ]

    backends: Dict[str, Dict[str, object]] = {}
    payloads: Dict[str, List[Dict[str, object]]] = {}
    for name in ENGINE_BACKENDS:
        clear_build_memo()
        eng = SweepEngine(
            jobs=2 if name == "pool" else 1,
            use_cache=False,
            backend=name,
            workers=2 if name == "distributed" else None,
        )
        started = time.perf_counter()
        payloads[name] = eng.run(cells)
        wall = time.perf_counter() - started
        stats = eng.stats
        built = stats.applications_built + stats.libraries_built
        logical = 2 * len(cells)
        backends[name] = dict(
            stats.engine_payload(),
            wall_seconds=round(wall, 4),
            construction_reduction_factor=(
                round(logical / built, 3) if built else float("inf")
            ),
        )
    clear_build_memo()

    identical = all(
        payloads[name] == payloads["serial"] for name in ENGINE_BACKENDS
    )
    return {
        "benchmark": "engine",
        "workload": "h264 fig8 grid",
        "frames": frames,
        "seed": seed,
        "budgets": [list(b) for b in budgets],
        "policies": list(policies),
        "cells": len(cells),
        "quick": quick,
        "backends": backends,
        "identical_results": identical,
        "construction_reduction_factor": (
            backends["serial"]["construction_reduction_factor"]
        ),
        "reduction_threshold": ENGINE_REDUCTION_THRESHOLD,
    }


def run_service_bench(
    frames: int = 16,
    seed: int = 7,
    budgets: Optional[Sequence[Tuple[int, int]]] = None,
    quick: bool = False,
) -> Dict[str, object]:
    """Benchmark the always-on daemon against one-shot fleets.

    Sequential leg: :data:`SERVICE_SWEEPS` identical sweeps, each through
    a fresh one-shot distributed backend (spawn fleet, handshake, sweep,
    tear down -- the pre-service cost of N submitters).  Service leg: one
    thread-embedded daemon (startup included in the measured wall), the
    same sweeps submitted concurrently; repeats are served from the
    in-flight table and the shared store instead of recomputing.  All
    runs must stay byte-identical to a serial reference.

    Wire phase: a fresh daemon's store is seeded with the grid once,
    then :data:`WIRE_JOBS` store-served repeat jobs of
    :data:`WIRE_TILE`-tiled payloads run through a direct
    :class:`~repro.service.client.ServiceClient` per wire mode -- plain
    JSON frames versus the negotiated binary columnar wire.  The server
    does no compute either way, so the legs isolate the transport: the
    binary wire must cut client-side bytes by
    :data:`WIRE_BYTES_THRESHOLD` and, comparing each mode's fastest
    job, lift throughput by :data:`WIRE_THROUGHPUT_THRESHOLD` --
    byte-identical throughout.
    """
    import shutil
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from repro.experiments.engine import (
        SweepCell, SweepEngine, clear_build_memo,
    )
    from repro.service.client import ServiceClient
    from repro.service.daemon import start_service_thread

    if budgets is None:
        budgets = QUICK_BUDGETS if quick else FIG8_BUDGETS
    if quick:
        frames = min(frames, 3)
    policies = ("risc", "mrts")
    cells = [
        SweepCell.make(
            (cg, prc), seed, policy,
            workload="h264", workload_params={"frames": frames},
        )
        for cg, prc in budgets
        for policy in policies
    ]

    clear_build_memo()
    reference = SweepEngine(use_cache=False, backend="serial").run(cells)

    clear_build_memo()
    started = time.perf_counter()
    sequential_identical = True
    for _ in range(SERVICE_SWEEPS):
        eng = SweepEngine(use_cache=False, backend="distributed", workers=2)
        sequential_identical &= eng.run(cells) == reference
    sequential_wall = time.perf_counter() - started

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-service-")
    clear_build_memo()
    try:
        started = time.perf_counter()
        handle = start_service_thread(workers=2, cache_dir=cache_dir)
        try:
            def _submit(_index: int):
                eng = SweepEngine(
                    use_cache=False,
                    backend="service",
                    coordinator=handle.coordinator,
                )
                return eng.run(cells), eng.stats.engine_payload()

            with ThreadPoolExecutor(max_workers=SERVICE_SWEEPS) as pool:
                runs = list(pool.map(_submit, range(SERVICE_SWEEPS)))
            service_wall = time.perf_counter() - started
        finally:
            handle.stop()
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    service_identical = all(records == reference for records, _ in runs)
    stats = [payload for _, payload in runs]
    service_counters = {
        name: sum(s[name] for s in stats)
        for name in (
            "frames_sent", "remote_cache_hits", "jobs_completed",
            "worker_restarts",
        )
    }
    throughput = (
        sequential_wall / service_wall if service_wall else float("inf")
    )

    # Wire phase: identical store-served jobs per encoding, so the only
    # variable is the transport itself.
    payloads = [cell.payload() for cell in cells]
    tiled = payloads * WIRE_TILE
    expected = reference * WIRE_TILE
    wire_modes: Dict[str, Dict[str, object]] = {}
    wire_identical = True
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-wire-")
    clear_build_memo()
    try:
        # The wire-phase daemon is explicitly binary-capable so the A/B
        # comparison holds even when $REPRO_WIRE pins the suite to json
        # (each client still picks its own leg's encoding explicitly).
        handle = start_service_thread(
            workers=2, cache_dir=cache_dir, wire_encoding="binary"
        )
        try:
            with ServiceClient(handle.coordinator) as seeder:
                seeded, _ = seeder.run_job(payloads)
            wire_identical &= seeded == reference
            for mode in ("json", "binary"):
                client = ServiceClient(
                    handle.coordinator, wire_encoding=mode
                )
                with client:
                    # One untimed warmup job settles allocator and
                    # event-loop state; the cyclic collector is paused
                    # over the timed window so a collection triggered by
                    # earlier phases' garbage does not land on one leg.
                    records, _counters = client.run_job(tiled)
                    wire_identical &= records == expected
                    before = client.wire_stats.snapshot()
                    gc.collect()
                    gc.disable()
                    walls = []
                    try:
                        for _ in range(WIRE_JOBS):
                            started = time.perf_counter()
                            records, _counters = client.run_job(tiled)
                            walls.append(time.perf_counter() - started)
                            wire_identical &= records == expected
                    finally:
                        gc.enable()
                    after = client.wire_stats.snapshot()
                snap = {
                    name: after[name] - before[name] for name in after
                }
                wire_modes[mode] = dict(
                    snap,
                    wall_seconds=round(min(walls), 4),
                    total_wall_seconds=round(sum(walls), 4),
                    wire_bytes=snap["bytes_sent"] + snap["bytes_received"],
                    jobs=WIRE_JOBS,
                )
        finally:
            handle.stop()
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    json_bytes = wire_modes["json"]["wire_bytes"]
    binary_bytes = wire_modes["binary"]["wire_bytes"]
    bytes_reduction = (
        json_bytes / binary_bytes if binary_bytes else float("inf")
    )
    binary_wall = wire_modes["binary"]["wall_seconds"]
    wire_throughput = (
        wire_modes["json"]["wall_seconds"] / binary_wall
        if binary_wall else float("inf")
    )
    return {
        "benchmark": "service",
        "workload": "h264 fig8 grid",
        "frames": frames,
        "seed": seed,
        "budgets": [list(b) for b in budgets],
        "policies": list(policies),
        "cells": len(cells),
        "sweeps": SERVICE_SWEEPS,
        "quick": quick,
        "sequential_wall_seconds": round(sequential_wall, 4),
        "service_wall_seconds": round(service_wall, 4),
        "service_counters": service_counters,
        "identical_results": (
            sequential_identical and service_identical and wire_identical
        ),
        "throughput_factor": round(throughput, 3),
        "throughput_threshold": SERVICE_THROUGHPUT_THRESHOLD,
        "wire_cells": len(tiled),
        "wire_jobs": WIRE_JOBS,
        "wire_modes": wire_modes,
        "wire_bytes_reduction": round(bytes_reduction, 3),
        "wire_bytes_threshold": WIRE_BYTES_THRESHOLD,
        "wire_throughput_factor": round(wire_throughput, 3),
        "wire_throughput_threshold": WIRE_THROUGHPUT_THRESHOLD,
    }


def render(payload: Dict[str, object]) -> str:
    """Human-readable summary of a bench payload."""
    lines = [
        f"selector bench on {payload['workload']} "
        f"(frames={payload['frames']}, seed={payload['seed']}, "
        f"{len(payload['budgets'])} budgets)"
    ]
    for mode, totals in payload["modes"].items():
        lines.append(
            f"  {mode:11s} recomputed={totals['evaluations_recomputed']:,} "
            f"skipped={totals['evaluations_skipped']:,} "
            f"pruned={totals['evaluations_pruned']:,} "
            f"of {totals['profit_evaluations']:,} logical "
            f"({totals['wall_seconds']}s)"
        )
    lines.append(
        f"  reduction: {payload['evaluation_reduction_factor']}x fewer "
        f"profit computations; identical results: "
        f"{payload['identical_results']}"
    )
    return "\n".join(lines)


def render_sim(payload: Dict[str, object]) -> str:
    """Human-readable summary of a sim bench payload."""
    lines = [
        f"sim engine bench on {payload['workload']} "
        f"(frames={payload['frames']}, seed={payload['seed']}, "
        f"{len(payload['budgets'])} budgets)"
    ]
    for engine, totals in payload["engines"].items():
        lines.append(
            f"  {engine:8s} ecu_calls={totals['ecu_calls']:,} "
            f"fastforwarded={totals['executions_fastforwarded']:,} "
            f"events={totals['events_processed']:,} "
            f"of {totals['total_executions']:,} executions "
            f"({totals['wall_seconds']}s)"
        )
    lines.append(
        f"  reduction: {payload['ecu_call_reduction_factor']}x fewer ECU "
        f"cascade calls (threshold {payload['reduction_threshold']}x); "
        f"identical results: {payload['identical_results']}"
    )
    lines.append(
        f"  packed speedup: {payload['packed_speedup']}x per-cell wall "
        f"clock over stepped (threshold "
        f"{payload['packed_speedup_threshold']}x)"
    )
    return "\n".join(lines)


def render_engine(payload: Dict[str, object]) -> str:
    """Human-readable summary of an engine bench payload."""
    lines = [
        f"sweep backend bench on {payload['workload']} "
        f"(frames={payload['frames']}, seed={payload['seed']}, "
        f"{payload['cells']} cells over {len(payload['budgets'])} budgets)"
    ]
    for name, totals in payload["backends"].items():
        lines.append(
            f"  {name:11s} apps_built={totals['applications_built']:,} "
            f"libs_built={totals['libraries_built']:,} "
            f"saved={totals['builds_saved']:,} "
            f"frames={totals['frames_sent']:,} "
            f"restarts={totals['worker_restarts']:,} "
            f"({totals['wall_seconds']}s)"
        )
    lines.append(
        f"  reduction: {payload['construction_reduction_factor']}x fewer "
        f"constructions (threshold {payload['reduction_threshold']}x); "
        f"identical results: {payload['identical_results']}"
    )
    return "\n".join(lines)


def render_service(payload: Dict[str, object]) -> str:
    """Human-readable summary of a service bench payload."""
    counters = payload["service_counters"]
    return "\n".join([
        f"sweep service bench on {payload['workload']} "
        f"(frames={payload['frames']}, seed={payload['seed']}, "
        f"{payload['sweeps']}x {payload['cells']} cells)",
        f"  sequential one-shot fleets: "
        f"{payload['sequential_wall_seconds']}s",
        f"  concurrent via daemon:      "
        f"{payload['service_wall_seconds']}s",
        f"  service counters: frames={counters['frames_sent']:,} "
        f"remote_hits={counters['remote_cache_hits']:,} "
        f"jobs={counters['jobs_completed']:,} "
        f"restarts={counters['worker_restarts']:,}",
        f"  throughput: {payload['throughput_factor']}x aggregate "
        f"(threshold {payload['throughput_threshold']}x); identical "
        f"results: {payload['identical_results']}",
        f"  wire phase: {payload['wire_jobs']} store-served jobs of "
        f"{payload['wire_cells']:,} cells per mode",
        *(
            f"    {mode:6s} best-job={totals['wall_seconds']}s "
            f"bytes={totals['wire_bytes']:,} "
            f"coalesced={totals['frames_coalesced']:,} "
            f"compressed={totals['blocks_compressed']:,}"
            for mode, totals in payload["wire_modes"].items()
        ),
        f"  wire bytes: {payload['wire_bytes_reduction']}x smaller "
        f"(threshold {payload['wire_bytes_threshold']}x); wire "
        f"throughput: {payload['wire_throughput_factor']}x "
        f"(threshold {payload['wire_throughput_threshold']}x)",
    ])


def check_gate(payload: Dict[str, object]) -> List[str]:
    """The regression conditions the verify smoke job enforces.

    Returns a list of failure messages (empty = pass): the two selector
    implementations must produce byte-identical stats, and the incremental
    one must not compute more profits than the naive one.
    """
    failures = []
    if not payload["identical_results"]:
        failures.append("naive and incremental selector stats differ")
    naive = payload["modes"]["naive"]["evaluations_recomputed"]
    incremental = payload["modes"]["incremental"]["evaluations_recomputed"]
    if incremental > naive:
        failures.append(
            f"incremental selector recomputed more profits than naive "
            f"({incremental} > {naive})"
        )
    return failures


def check_sim_gate(payload: Dict[str, object]) -> List[str]:
    """The regression conditions of the sim suite (empty = pass): all
    engines must produce byte-identical stats, the event engine must
    reduce ECU cascade calls by at least the threshold factor, and the
    packed engine must beat the stepped wall clock by at least the
    packed-speedup threshold."""
    failures = []
    if not payload["identical_results"]:
        failures.append("stepped, event and packed engine stats differ")
    reduction = payload["ecu_call_reduction_factor"]
    threshold = payload["reduction_threshold"]
    if reduction < threshold:
        failures.append(
            f"event engine reduced ECU calls only {reduction}x "
            f"(threshold {threshold}x)"
        )
    speedup = payload["packed_speedup"]
    speedup_threshold = payload["packed_speedup_threshold"]
    if speedup < speedup_threshold:
        failures.append(
            f"packed engine sped up wall clock only {speedup}x "
            f"(threshold {speedup_threshold}x)"
        )
    return failures


def check_engine_gate(payload: Dict[str, object]) -> List[str]:
    """The regression conditions of the engine suite (empty = pass): every
    backend must produce byte-identical cell records, and the construction
    memos must cut builds by at least the threshold factor on the serial
    backend (the pool/distributed backends split the memo across worker
    processes, so only the serial counters are deterministic)."""
    failures = []
    if not payload["identical_results"]:
        failures.append("executor backends produced differing cell records")
    reduction = payload["construction_reduction_factor"]
    threshold = payload["reduction_threshold"]
    if reduction < threshold:
        failures.append(
            f"memos reduced constructions only {reduction}x "
            f"(threshold {threshold}x)"
        )
    return failures


def check_service_gate(payload: Dict[str, object]) -> List[str]:
    """The regression conditions of the service suite (empty = pass):
    every sweep -- sequential or through the daemon -- must match the
    serial reference byte-for-byte, the daemon must beat the one-shot
    fleets' aggregate throughput by at least the threshold factor, and
    the binary wire must clear both its bytes-reduction and
    job-throughput thresholds over the JSON wire."""
    failures = []
    if not payload["identical_results"]:
        failures.append(
            "service or distributed sweeps diverged from the serial "
            "reference"
        )
    throughput = payload["throughput_factor"]
    threshold = payload["throughput_threshold"]
    if throughput < threshold:
        failures.append(
            f"daemon improved aggregate throughput only {throughput}x "
            f"(threshold {threshold}x)"
        )
    reduction = payload["wire_bytes_reduction"]
    if reduction < payload["wire_bytes_threshold"]:
        failures.append(
            f"binary wire shrank transport bytes only {reduction}x "
            f"(threshold {payload['wire_bytes_threshold']}x)"
        )
    wire_throughput = payload["wire_throughput_factor"]
    if wire_throughput < payload["wire_throughput_threshold"]:
        failures.append(
            f"binary wire lifted job throughput only {wire_throughput}x "
            f"(threshold {payload['wire_throughput_threshold']}x)"
        )
    return failures


class _ListRows:
    """In-memory stand-in for ``ResultReader``'s aggregation surface.

    The store suite's baseline leg aggregates a fully materialised row
    list through the *same* KPI code path as the streamed leg, so the
    two summaries are comparable and the only variable is where the rows
    live."""

    def __init__(self, rows_list):
        self._rows = rows_list
        self.rows = len(rows_list)

    def group_fold(self, key, fn, init, fields=None):
        """Same contract as :meth:`ResultReader.group_fold`, over the list."""
        groups = {}
        for row in self._rows:
            group = key(row)
            if group not in groups:
                groups[group] = init()
            groups[group] = fn(groups[group], row)
        return groups


def run_store_bench(
    frames: int = 16, seed: int = 7, quick: bool = False
) -> Dict[str, object]:
    """Benchmark columnar-store streaming against in-memory aggregation.

    Two legs over the same deterministic synthetic sweep
    (:mod:`repro.results.synth`), each wrapped in ``tracemalloc``:

    * **in-memory**: materialise every row in a list, aggregate the KPI
      summary from the list (today's ``engine.run`` shape);
    * **store**: generate-append-drop each row through a
      :class:`ResultWriter` (bounded shard buffer), then aggregate the
      same KPI summary through :class:`ResultReader`'s streamed
      group-fold.

    The payload reports both peaks, their ratio (gated), write/fold
    throughput, and two identity bits: every stored row must decode
    byte-identically to its regenerated original, and the two KPI
    summaries must match exactly.
    """
    import shutil
    import tempfile
    import tracemalloc

    from repro.results.kpi import speedup_summary
    from repro.results.schema import canonical_json
    from repro.results.store import ResultReader, ResultWriter
    from repro.results.synth import synthetic_row, synthetic_rows

    cells = STORE_CELLS_QUICK if quick else STORE_CELLS

    # Leg 1: the in-memory baseline (list of rows + aggregation).
    tracemalloc.start()
    rows_list = list(synthetic_rows(cells, seed=seed))
    summary_memory = speedup_summary(_ListRows(rows_list))
    peak_memory = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    del rows_list

    # Leg 2: streamed through the columnar store.
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        tracemalloc.start()
        write_start = time.perf_counter()
        writer = ResultWriter(root, sweep="bench", shard_rows=STORE_SHARD_ROWS)
        for index, cell, record in synthetic_rows(cells, seed=seed):
            writer.append(index, cell, record)
        path = writer.close()
        write_elapsed = time.perf_counter() - write_start
        reader = ResultReader(path)
        fold_start = time.perf_counter()
        summary_store = speedup_summary(reader)
        fold_elapsed = time.perf_counter() - fold_start
        peak_store = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

        # Byte-identity: every stored row decodes back to its original.
        roundtrip_ok = True
        decoded = 0
        for index, cell, record in reader.iter_rows():
            _, cell2, record2 = synthetic_row(index, seed=seed)
            if canonical_json([cell, record]) != canonical_json([cell2, record2]):
                roundtrip_ok = False
                break
            decoded += 1
        roundtrip_ok = roundtrip_ok and decoded == cells
        stored_bytes = sum(
            entry["bytes"] for entry in reader.manifest["shards"]
        )
        shards = len(reader.manifest["shards"])
    finally:
        shutil.rmtree(root, ignore_errors=True)

    threshold = STORE_MEMORY_THRESHOLD_QUICK if quick else STORE_MEMORY_THRESHOLD
    return {
        "suite": "store",
        "quick": quick,
        "cells": cells,
        "shard_rows": STORE_SHARD_ROWS,
        "peak_bytes_in_memory": peak_memory,
        "peak_bytes_store": peak_store,
        "memory_ratio": round(peak_memory / peak_store, 2) if peak_store else 0.0,
        "memory_threshold": threshold,
        "identical_results": roundtrip_ok,
        "kpi_match": canonical_json(summary_store) == canonical_json(summary_memory),
        "stored_bytes": stored_bytes,
        "shards": shards,
        "write_cells_per_sec": round(cells / write_elapsed, 1),
        "fold_cells_per_sec": round(cells / fold_elapsed, 1),
        "kpi_groups": summary_store["groups"],
    }


def render_store(payload: Dict[str, object]) -> str:
    """Human-readable summary of the store suite's payload."""
    from repro.util.tables import render_table

    rows = [
        ["in-memory", payload["peak_bytes_in_memory"], "-"],
        ["store", payload["peak_bytes_store"],
         f"{payload['memory_ratio']}x lower"],
    ]
    table = render_table(
        ["aggregation", "peak bytes", "vs in-memory"],
        rows,
        title=(
            f"store suite: {payload['cells']} synthetic cells, "
            f"{payload['shards']} shards of {payload['shard_rows']} rows"
        ),
    )
    return (
        f"{table}\n"
        f"round-trip byte-identical: {payload['identical_results']}; "
        f"KPI summaries match: {payload['kpi_match']}\n"
        f"write {payload['write_cells_per_sec']} cells/s, "
        f"streamed fold {payload['fold_cells_per_sec']} cells/s, "
        f"{payload['stored_bytes']} bytes on disk"
    )


def check_store_gate(payload: Dict[str, object]) -> List[str]:
    """The regression conditions of the store suite (empty = pass): the
    stored rows must round-trip byte-identically, the streamed KPI summary
    must equal the in-memory one, and peak traced memory must beat the
    in-memory baseline by at least the threshold factor."""
    failures = []
    if not payload["identical_results"]:
        failures.append("stored rows did not round-trip byte-identically")
    if not payload["kpi_match"]:
        failures.append("streamed KPI summary diverged from in-memory")
    ratio = payload["memory_ratio"]
    threshold = payload["memory_threshold"]
    if ratio < threshold:
        failures.append(
            f"store cut peak memory only {ratio}x "
            f"(threshold {threshold}x)"
        )
    return failures


#: suite name -> (runner, renderer, gate, default output file)
SUITES = {
    "selector": (
        run_selector_bench, render, check_gate, "BENCH_selector.json"
    ),
    "sim": (run_sim_bench, render_sim, check_sim_gate, "BENCH_sim.json"),
    "engine": (
        run_engine_bench, render_engine, check_engine_gate,
        "BENCH_engine.json",
    ),
    "service": (
        run_service_bench, render_service, check_service_gate,
        "BENCH_service.json",
    ),
    "store": (
        run_store_bench, render_store, check_store_gate,
        "BENCH_store.json",
    ),
}


def main(argv=None) -> int:
    """CLI entry point: run the suite, write the JSON payload, gate."""
    import argparse

    parser = argparse.ArgumentParser(
        description="A/B benchmark the repro's hot paths "
        "(selector implementations, simulator engines)"
    )
    parser.add_argument("--suite", choices=sorted(SUITES), default="selector",
                        help="which benchmark to run (default: selector)")
    parser.add_argument("--quick", action="store_true",
                        help="small frame count and budget cut (CI smoke)")
    parser.add_argument("--frames", type=int, default=16)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=None,
                        help="where to write the JSON payload "
                        "(default: BENCH_<suite>.json)")
    args = parser.parse_args(argv)

    run, render_suite, gate, default_out = SUITES[args.suite]
    out = args.out or default_out
    payload = run(frames=args.frames, seed=args.seed, quick=args.quick)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render_suite(payload))
    print(f"wrote {out}")
    failures = gate(payload)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


__all__ = [
    "ENGINE_BACKENDS",
    "ENGINE_REDUCTION_THRESHOLD",
    "FIG8_BUDGETS",
    "PACKED_SPEEDUP_THRESHOLD",
    "PACKED_SPEEDUP_THRESHOLD_QUICK",
    "QUICK_BUDGETS",
    "SERVICE_SWEEPS",
    "SERVICE_THROUGHPUT_THRESHOLD",
    "SIM_REDUCTION_THRESHOLD",
    "STORE_CELLS",
    "STORE_CELLS_QUICK",
    "STORE_MEMORY_THRESHOLD",
    "STORE_MEMORY_THRESHOLD_QUICK",
    "STORE_SHARD_ROWS",
    "SUITES",
    "WIRE_BYTES_THRESHOLD",
    "WIRE_JOBS",
    "WIRE_THROUGHPUT_THRESHOLD",
    "WIRE_TILE",
    "check_engine_gate",
    "check_gate",
    "check_service_gate",
    "check_sim_gate",
    "check_store_gate",
    "main",
    "render",
    "render_engine",
    "render_service",
    "render_sim",
    "render_store",
    "run_engine_bench",
    "run_selector_bench",
    "run_service_bench",
    "run_sim_bench",
    "run_store_bench",
]
