"""Trigger instructions: the application's forecast to the run-time system.

The application programmer embeds trigger instructions into the binary to
forecast the kernel executions of the upcoming functional block (Section 4).
Each trigger is the 4-tuple ``{K_i, e_i, tf_i, tb_i}``: the kernel, its
expected number of executions, the time until its first execution, and the
average time between two consecutive executions.  The values start from
offline profiling; at run time the Monitoring & Prediction Unit corrects
them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import ValidationError, check_non_negative


@dataclass(frozen=True)
class TriggerInstruction:
    """Forecast for one kernel of the upcoming functional block."""

    kernel: str          #: K_i  - kernel identifier
    executions: float    #: e_i  - expected number of executions
    time_to_first: float #: tf_i - cycles until the first execution
    time_between: float  #: tb_i - average cycles between consecutive executions

    def __post_init__(self) -> None:
        if not self.kernel:
            raise ValidationError("TriggerInstruction.kernel must be non-empty")
        check_non_negative("TriggerInstruction.executions", self.executions)
        check_non_negative("TriggerInstruction.time_to_first", self.time_to_first)
        check_non_negative("TriggerInstruction.time_between", self.time_between)

    def with_forecast(
        self, executions: float, time_to_first: float, time_between: float
    ) -> "TriggerInstruction":
        """Copy with updated forecast values (used by the MPU)."""
        return replace(
            self,
            executions=executions,
            time_to_first=time_to_first,
            time_between=time_between,
        )


__all__ = ["TriggerInstruction"]
