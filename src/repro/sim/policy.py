"""The run-time policy interface the simulator drives.

A policy is everything between the application and the fabric: it reacts to
trigger instructions at functional-block entry (selection), steers every
kernel execution (execution control), and observes the finished iteration
(monitoring).  mRTS and every baseline of the paper's evaluation implement
this interface, so the simulator is policy-agnostic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.fabric.reconfig import ReconfigurationController
from repro.ise.ise import ISE
from repro.ise.library import ISELibrary
from repro.sim.trigger import TriggerInstruction

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.ecu import ExecutionDecision, ExecutionRun
    from repro.sim.program import Application


@dataclass
class SelectionOutcome:
    """What a policy decided at functional-block entry."""

    selection: Dict[str, Optional[ISE]] = field(default_factory=dict)
    #: selector cycles that delay the application (after overhead hiding)
    charged_overhead_cycles: int = 0
    #: total selector cycles including the hidden part
    full_overhead_cycles: int = 0
    #: the raw selection result, if the policy ran a selector
    detail: Any = None


class RuntimePolicy(abc.ABC):
    """Base class of mRTS and the baseline run-time systems."""

    #: short identifier used in result tables
    name: str = "policy"

    def __init__(self) -> None:
        self.library: Optional[ISELibrary] = None
        self.controller: Optional[ReconfigurationController] = None

    # ------------------------------------------------------------ set-up
    def attach(
        self, library: ISELibrary, controller: ReconfigurationController
    ) -> None:
        """Bind the policy to the compile-time library and the fabric."""
        self.library = library
        self.controller = controller

    def prepare(self, application: "Application") -> None:
        """Offline phase (compile-time policies override this to make their
        static selection from the application profile)."""

    # ------------------------------------------------------------ events
    @abc.abstractmethod
    def on_block_entry(
        self,
        block_name: str,
        profiled_triggers: Sequence[TriggerInstruction],
        now: int,
    ) -> SelectionOutcome:
        """React to the trigger instructions of a functional block."""

    @abc.abstractmethod
    def execute(self, kernel_name: str, now: int) -> "ExecutionDecision":
        """Steer one kernel execution (the ECU hook)."""

    def execute_run(
        self,
        kernel_name: str,
        now: int,
        max_executions: int,
        gap: int,
    ) -> "ExecutionRun":
        """Steer up to ``max_executions`` back-to-back executions of
        ``kernel_name`` (the first at ``now``, each next one ``gap`` cycles
        after the previous one finished) -- the event-driven simulator's
        batch hook.

        Policies steering through an :class:`ExecutionControlUnit` (an
        ``ecu`` attribute) inherit its horizon-aware fast-forwarding; any
        other policy falls back to one :meth:`execute` per call, which
        makes the event engine behave exactly like the stepped loop.
        """
        from repro.core.ecu import ExecutionRun

        ecu = getattr(self, "ecu", None)
        if ecu is not None:
            return ecu.execute_run(kernel_name, now, max_executions, gap)
        decision = self.execute(kernel_name, now)
        return ExecutionRun(
            decision=decision, count=1, horizon=float(now + 1)
        )

    def on_block_exit(
        self,
        block_name: str,
        observed: Mapping[str, Tuple[float, float, float]],
        now: int,
    ) -> None:
        """Observe the finished iteration.

        ``observed`` maps kernel name to the actual
        ``(executions, time_to_first, time_between)`` of the iteration.
        """

    # ------------------------------------------------------------ helpers
    def _require_attached(
        self,
    ) -> Tuple[ISELibrary, ReconfigurationController]:
        if self.library is None or self.controller is None:
            raise RuntimeError(f"policy {self.name!r} used before attach()")
        return self.library, self.controller


__all__ = ["RuntimePolicy", "SelectionOutcome"]
