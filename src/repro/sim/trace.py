"""Execution traces: what happened, cycle by cycle.

Optional detailed recording of every kernel execution (and, via the
reconfiguration controller, every reconfiguration).  Traces power the
in-depth analyses (mode breakdowns, Fig. 5-style timelines) and the
self-checks of the test suite; large sweeps disable them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.ecu import ExecutionMode


@dataclass(frozen=True)
class ExecutionRecord:
    """One kernel execution as steered by the policy."""

    time: int            #: cycle at which the execution started
    block: str
    kernel: str
    mode: "ExecutionMode"
    latency: int
    level: int
    ise_name: Optional[str]


@dataclass(frozen=True)
class ExecutionRunRecord:
    """A fast-forwarded batch of identical executions (event engine).

    ``count`` executions of ``kernel``, the first starting at ``time``,
    each subsequent one ``period`` (= gap + latency) cycles later, all
    served by the same cascade decision.  :meth:`expand` reconstructs the
    exact per-execution records the stepped loop would have emitted, so
    run-length recording never changes a trace payload.
    """

    time: int            #: cycle at which the first execution started
    block: str
    kernel: str
    mode: "ExecutionMode"
    latency: int
    level: int
    ise_name: Optional[str]
    count: int
    period: int

    def expand(self) -> List[ExecutionRecord]:
        """The equivalent per-execution records, in execution order."""
        return [
            ExecutionRecord(
                time=self.time + index * self.period,
                block=self.block,
                kernel=self.kernel,
                mode=self.mode,
                latency=self.latency,
                level=self.level,
                ise_name=self.ise_name,
            )
            for index in range(self.count)
        ]


@dataclass(frozen=True)
class SelectionRecord:
    """Selector-core counters of one functional-block selection.

    Captured from the policy's selection detail (duck-typed against
    :class:`~repro.core.selector.SelectionResult`); excluded from
    :meth:`SimulationTrace.to_payload` so the golden snapshots stay
    independent of the selector implementation.
    """

    time: int            #: cycle of the block entry
    block: str
    mode: str            #: selector implementation ("naive" | "incremental")
    rounds: int
    profit_evaluations: int
    evaluations_recomputed: int
    evaluations_skipped: int
    evaluations_pruned: int
    invalidations: int


@dataclass
class SimulationTrace:
    """Chronological record of a simulation run."""

    executions: List[ExecutionRecord] = field(default_factory=list)
    #: block name -> list of (entry_cycle, exit_cycle)
    block_windows: Dict[str, List[tuple]] = field(default_factory=dict)
    #: per-selection selector counters (policies with a selection detail)
    selections: List[SelectionRecord] = field(default_factory=list)
    #: run-length records of the event engine (empty under the stepped
    #: engine); their expansions are already part of ``executions``
    runs: List[ExecutionRunRecord] = field(default_factory=list)

    def record_execution(self, record: ExecutionRecord) -> None:
        self.executions.append(record)

    def record_execution_run(self, run: ExecutionRunRecord) -> None:
        """Record a fast-forwarded batch: the run is kept for engine
        observability and expanded back into per-execution records so
        every trace consumer (and the golden snapshots) sees the exact
        stepped-loop sequence."""
        self.runs.append(run)
        self.executions.extend(run.expand())

    def record_block_window(self, block: str, entry: int, exit_: int) -> None:
        self.block_windows.setdefault(block, []).append((entry, exit_))

    def record_selection(self, record: SelectionRecord) -> None:
        self.selections.append(record)

    def selections_payload(self) -> List[Dict[str, object]]:
        """The selection records as JSON-able dicts (not part of
        :meth:`to_payload`; see :class:`SelectionRecord`)."""
        return [
            {
                "time": r.time,
                "block": r.block,
                "mode": r.mode,
                "rounds": r.rounds,
                "profit_evaluations": r.profit_evaluations,
                "evaluations_recomputed": r.evaluations_recomputed,
                "evaluations_skipped": r.evaluations_skipped,
                "evaluations_pruned": r.evaluations_pruned,
                "invalidations": r.invalidations,
            }
            for r in self.selections
        ]

    def executions_of(self, kernel: str) -> List[ExecutionRecord]:
        return [r for r in self.executions if r.kernel == kernel]

    def mode_sequence(self, kernel: str) -> List[str]:
        """The execution-mode string of every execution of ``kernel`` in
        order -- handy for asserting the ECU cascade (RISC/monoCG first,
        then intermediates, then the full ISE)."""
        return [r.mode.value for r in self.executions_of(kernel)]

    def to_payload(self) -> Dict[str, object]:
        """Canonical JSON-able form -- the trace half of the golden-trace
        regression snapshots (modes as their string values)."""
        return {
            "executions": [
                {
                    "time": r.time,
                    "block": r.block,
                    "kernel": r.kernel,
                    "mode": r.mode.value,
                    "latency": r.latency,
                    "level": r.level,
                    "ise_name": r.ise_name,
                }
                for r in self.executions
            ],
            "block_windows": {
                block: [list(window) for window in windows]
                for block, windows in sorted(self.block_windows.items())
            },
        }


__all__ = [
    "ExecutionRecord",
    "ExecutionRunRecord",
    "SelectionRecord",
    "SimulationTrace",
]
