"""The cycle-level simulator of the multi-grained reconfigurable processor.

Replaces the authors' cycle-accurate instruction-set simulator: it executes
an :class:`~repro.sim.program.Application` against a run-time policy, with
simulated wall-clock time advancing through trigger handling, non-kernel
gaps and kernel executions, while reconfigurations complete at the absolute
cycles the reconfiguration controller scheduled.

The simulator is deliberately policy-agnostic -- mRTS, the RISPP-like,
Morpheus/4S-like, offline-optimal and online-optimal systems all run through
the exact same loop, so the comparisons of Figs. 8-10 are apples-to-apples.

Three interchangeable execution engines drive the kernel loop:

* ``stepped`` -- the reference implementation: one
  :meth:`~repro.sim.policy.RuntimePolicy.execute` call per kernel
  execution.
* ``event`` (default) -- event-driven fast-forwarding: between
  availability events the ECU cascade's verdict is piecewise-constant, so
  runs of identical executions are advanced with O(1) arithmetic through
  :meth:`~repro.sim.policy.RuntimePolicy.execute_run` (see
  docs/simulator.md for the equivalence argument).
* ``packed`` -- the event loop over precompiled structure-of-arrays
  buffers (:mod:`repro.core.packed`): run-length-encoded kernel
  interleavings with prefix-sum arrays, the ECU regime cache-hit path
  transcribed inline (LRU touches deferred), and steady-state iteration
  suffixes folded in one pass of index arithmetic.  The selector switches
  to its packed candidate arrays through the policy's ``enable_packed``
  hook.

All engines produce byte-identical statistics and traces; pick one
explicitly via ``Simulator(engine=...)`` or globally via the ``REPRO_SIM``
environment variable (mirroring the ``REPRO_SELECTOR`` A/B pattern).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.packed import PackedIteration

from repro.fabric.reconfig import ReconfigurationController
from repro.fabric.resources import ResourceBudget
from repro.ise.library import ISELibrary
from repro.sim.policy import RuntimePolicy
from repro.sim.program import Application, interleave
from repro.sim.stats import SimulationStats
from repro.sim.trace import (
    ExecutionRecord,
    ExecutionRunRecord,
    SelectionRecord,
    SimulationTrace,
)
#: Environment variable selecting the execution engine (re-exported from
#: the central registry in :mod:`repro.config_env`).
from repro.config_env import ENGINE_MODE_ENV

#: Valid engine implementations.
ENGINE_MODES = ("stepped", "event", "packed")


def resolve_engine_mode(mode: Optional[str] = None) -> str:
    """The engine to use: the explicit ``mode`` if given, else
    ``$REPRO_SIM``, else ``event``."""
    from repro.config_env import sim_engine_mode

    return sim_engine_mode(mode)


@dataclass
class SimulationResult:
    """Everything a simulation run produced."""

    policy_name: str
    budget: ResourceBudget
    stats: SimulationStats
    trace: Optional[SimulationTrace] = None
    controller: Optional[ReconfigurationController] = None

    @property
    def total_cycles(self) -> int:
        return self.stats.total_cycles


class Simulator:
    """Runs one application under one policy on one fabric budget."""

    def __init__(
        self,
        application: Application,
        library: ISELibrary,
        budget: ResourceBudget,
        policy: RuntimePolicy,
        collect_trace: bool = False,
        contention=None,
        engine: Optional[str] = None,
    ):
        """``contention`` optionally supplies a
        :class:`repro.sim.contention.ContentionSchedule`: background tasks
        claiming/releasing fabric at run time (the paper's run-time
        variation (b)).  Events are applied at functional-block boundaries.

        ``engine`` picks the execution engine (``"stepped"`` | ``"event"``
        | ``"packed"``); ``None`` defers to ``$REPRO_SIM`` and finally to
        ``event``.
        """
        self.application = application
        self.library = library
        self.budget = budget
        self.policy = policy
        self.collect_trace = collect_trace
        self.contention = contention
        self.engine = engine
        #: id(iteration) -> packed buffers, installed per packed run.
        self._packed_iterations: Optional[Dict[int, "PackedIteration"]] = None

    def run(self) -> SimulationResult:
        """Execute the application start to finish; returns the result."""
        engine = resolve_engine_mode(self.engine)
        controller = ReconfigurationController(self.budget)
        self.policy.attach(self.library, controller)
        self.policy.prepare(self.application)

        stats = SimulationStats()
        trace = SimulationTrace() if self.collect_trace else None
        # Profiled triggers are computed once per block: they are burnt into
        # the binary at compile time and never change.
        if engine == "packed":
            # Imported lazily: repro.core.packed pulls in repro.sim.program,
            # whose package __init__ imports this module.
            from repro.core.packed import pack_program

            program = pack_program(self.application)
            profiled = program.profiled
            self._packed_iterations = {
                id(iteration): packed_iteration
                for iteration, packed_iteration in zip(
                    self.application.iterations, program.iterations
                )
            }
            run_kernels = self._run_kernels_packed
            enable_packed = getattr(self.policy, "enable_packed", None)
            if enable_packed is not None:
                enable_packed()
        else:
            profiled = {
                block.name: self.application.profiled_triggers(block.name)
                for block in self.application.blocks
            }
            run_kernels = (
                self._run_kernels_event
                if engine == "event"
                else self._run_kernels_stepped
            )

        t = 0
        for iteration in self.application.iterations:
            block_entry = t
            if self.contention is not None:
                self.contention.apply_due(controller, t)
            outcome = self.policy.on_block_entry(
                iteration.block, profiled[iteration.block], t
            )
            t += outcome.charged_overhead_cycles
            stats.overhead_cycles_charged += outcome.charged_overhead_cycles
            stats.overhead_cycles_full += outcome.full_overhead_cycles
            stats.selections += 1
            # Selector-core observability: policies whose selection outcome
            # carries a SelectionResult-shaped detail (duck-typed) feed the
            # cache/evaluation counters; baselines without one are skipped.
            detail = outcome.detail
            if detail is not None and hasattr(detail, "profit_evaluations"):
                stats.record_selection_detail(detail)
                if trace is not None:
                    trace.record_selection(
                        SelectionRecord(
                            time=block_entry,
                            block=iteration.block,
                            mode=getattr(detail, "mode", "?"),
                            rounds=detail.rounds,
                            profit_evaluations=detail.profit_evaluations,
                            evaluations_recomputed=detail.evaluations_recomputed,
                            evaluations_skipped=detail.evaluations_skipped,
                            evaluations_pruned=detail.evaluations_pruned,
                            invalidations=detail.invalidations,
                        )
                    )

            first: Dict[str, int] = {}
            last: Dict[str, int] = {}
            counts: Dict[str, int] = {}
            latency_sums: Dict[str, int] = {}
            t = run_kernels(
                iteration, t, stats, trace, first, last, counts, latency_sums
            )

            observed = self._observed_timings(
                iteration, block_entry, first, last, counts, latency_sums
            )
            self.policy.on_block_exit(iteration.block, observed, t)
            stats.record_block(iteration.block, t - block_entry)
            if trace is not None:
                trace.record_block_window(iteration.block, block_entry, t)

        stats.total_cycles = t
        stats.reconfigurations = controller.reconfig_count
        return SimulationResult(
            policy_name=self.policy.name,
            budget=self.budget,
            stats=stats,
            trace=trace,
            controller=controller,
        )

    # ------------------------------------------------------------ engines
    def _run_kernels_stepped(
        self,
        iteration,
        t: int,
        stats: SimulationStats,
        trace: Optional[SimulationTrace],
        first: Dict[str, int],
        last: Dict[str, int],
        counts: Dict[str, int],
        latency_sums: Dict[str, int],
    ) -> int:
        """The reference loop: one policy call per kernel execution."""
        for kernel_name, gap in interleave(iteration.kernels):
            t += gap
            stats.gap_cycles += gap
            decision = self.policy.execute(kernel_name, t)
            stats.ecu_calls += 1
            first.setdefault(kernel_name, t)
            counts[kernel_name] = counts.get(kernel_name, 0) + 1
            latency_sums[kernel_name] = (
                latency_sums.get(kernel_name, 0) + decision.latency
            )
            stats.record_execution(decision.mode, decision.latency)
            if trace is not None:
                trace.record_execution(
                    ExecutionRecord(
                        time=t,
                        block=iteration.block,
                        kernel=kernel_name,
                        mode=decision.mode,
                        latency=decision.latency,
                        level=decision.level,
                        ise_name=decision.ise_name,
                    )
                )
            t += decision.latency
            last[kernel_name] = t
        return t

    def _run_kernels_event(
        self,
        iteration,
        t: int,
        stats: SimulationStats,
        trace: Optional[SimulationTrace],
        first: Dict[str, int],
        last: Dict[str, int],
        counts: Dict[str, int],
        latency_sums: Dict[str, int],
    ) -> int:
        """Event-driven fast-forwarding: maximal runs of back-to-back
        executions of one kernel are advanced in O(1) per regime instead of
        O(1) per execution.  The policy's :meth:`execute_run` bounds each
        batch by the next availability event, so the resulting statistics
        and (expanded) trace are byte-identical to the stepped loop."""
        steps = interleave(iteration.kernels)
        n_steps = len(steps)
        index = 0
        while index < n_steps:
            kernel_name, gap = steps[index]
            stop = index + 1
            while stop < n_steps and steps[stop] == (kernel_name, gap):
                stop += 1
            remaining = stop - index
            index = stop
            while remaining > 0:
                start = t + gap
                run = self.policy.execute_run(kernel_name, start, remaining, gap)
                decision = run.decision
                count = run.count
                period = gap + decision.latency
                if run.cascade_called:
                    stats.ecu_calls += 1
                    stats.executions_fastforwarded += count - 1
                else:
                    stats.executions_fastforwarded += count
                if run.event_crossed:
                    stats.events_processed += 1
                stats.gap_cycles += count * gap
                first.setdefault(kernel_name, start)
                counts[kernel_name] = counts.get(kernel_name, 0) + count
                latency_sums[kernel_name] = (
                    latency_sums.get(kernel_name, 0) + count * decision.latency
                )
                stats.record_execution_run(decision.mode, decision.latency, count)
                if trace is not None:
                    trace.record_execution_run(
                        ExecutionRunRecord(
                            time=start,
                            block=iteration.block,
                            kernel=kernel_name,
                            mode=decision.mode,
                            latency=decision.latency,
                            level=decision.level,
                            ise_name=decision.ise_name,
                            count=count,
                            period=period,
                        )
                    )
                t = start + (count - 1) * period + decision.latency
                last[kernel_name] = t
                remaining -= count
        return t

    def _run_kernels_packed(
        self,
        iteration,
        t: int,
        stats: SimulationStats,
        trace: Optional[SimulationTrace],
        first: Dict[str, int],
        last: Dict[str, int],
        counts: Dict[str, int],
        latency_sums: Dict[str, int],
    ) -> int:
        """The event loop over precompiled structure-of-arrays buffers.

        Byte-identical to :meth:`_run_kernels_event` by construction (see
        docs/simulator.md for the full argument):

        * the regime cache-hit branch is a line-for-line transcription of
          :meth:`repro.core.ecu.ExecutionControlUnit.execute_run`'s hit
          path (``_batched`` + ``_executions_until``), with the LRU touch
          deferred -- ``touch`` keeps the maximum timestamp and
          ``last_used`` is only read at configuration points, all of which
          flush the deferred touches first;
        * misses delegate to the very same ``policy.execute_run`` the event
          engine calls (policies without an ECU regime cache therefore take
          this path for every run, reproducing the event engine exactly);
        * the bulk suffix fold only fires when tracing is off and every
          kernel still owed executions sits in a version-valid regime with
          an infinite horizon and has already executed this block -- i.e.
          when every remaining run would be a full-count cache hit -- and
          folds the per-run arithmetic with the precomputed prefix sums.
        """
        assert self._packed_iterations is not None
        packed = self._packed_iterations[id(iteration)]
        policy = self.policy
        ecu = getattr(policy, "ecu", None)
        regimes = getattr(ecu, "regimes", None)
        resources = ecu.controller.resources if regimes is not None else None
        inf = float("inf")
        block = iteration.block

        # Local accumulators, merged into ``stats`` once at the end.
        ecu_calls = 0
        fastforwarded = 0
        events = 0
        gap_cycles = 0
        kernel_cycles = 0
        exec_by_mode: Dict[str, int] = {}
        cycles_by_mode: Dict[str, int] = {}
        # kernel -> (impl names, run-end timestamp): deferred LRU touches.
        pending_touch: Dict[str, Tuple[Tuple[str, ...], int]] = {}

        runs = packed.runs
        n_runs = packed.n_runs
        gap_suffix = packed.gap_suffix
        cnt_prefix = packed.cnt_prefix
        total_cnt = packed.total_cnt
        last_run_of = packed.last_run_of
        bulk_ok = trace is None and regimes is not None
        try_bulk = bulk_ok

        j = 0
        while j < n_runs:
            if try_bulk:
                try_bulk = False
                version = resources.version
                suffix = []
                feasible = True
                for k in packed.kernels:
                    cnt = total_cnt[k] - cnt_prefix[k][j]
                    if cnt <= 0:
                        continue
                    regime = regimes.get(k)
                    if (
                        regime is None
                        or regime.version != version
                        or regime.horizon != inf
                        or k not in first
                    ):
                        feasible = False
                        break
                    suffix.append((k, cnt, regime))
                if feasible and suffix:
                    # Every remaining run is a full-count cache hit: fold
                    # them.  Each group of length L advances t by
                    # L * (gap + latency), so the suffix advances t by the
                    # remaining gap mass plus each kernel's remaining
                    # executions times its regime latency.
                    base_gap = gap_suffix[j]
                    advance = base_gap
                    for k, cnt, regime in suffix:
                        advance += cnt * regime.decision.latency
                    for k, cnt, regime in suffix:
                        decision = regime.decision
                        latency = decision.latency
                        m = last_run_of[k]
                        # Simulated time at the start of k's last group:
                        # gaps and executions of every group in runs[j:m].
                        t_m = t + (base_gap - gap_suffix[m])
                        for k2, _, regime2 in suffix:
                            t_m += (
                                cnt_prefix[k2][m] - cnt_prefix[k2][j]
                            ) * regime2.decision.latency
                        _, gap_m, len_m = runs[m]
                        end = t_m + len_m * (gap_m + latency)
                        last[k] = end
                        pending_touch[k] = (regime.touch_impls, end - latency)
                        counts[k] = counts.get(k, 0) + cnt
                        latency_sums[k] = latency_sums.get(k, 0) + cnt * latency
                        key = decision.mode.value
                        exec_by_mode[key] = exec_by_mode.get(key, 0) + cnt
                        cycles_by_mode[key] = (
                            cycles_by_mode.get(key, 0) + cnt * latency
                        )
                        kernel_cycles += cnt * latency
                        fastforwarded += cnt
                    gap_cycles += base_gap
                    t += advance
                    break
            kernel_name, gap, remaining = runs[j]
            j += 1
            while remaining > 0:
                start = t + gap
                regime = (
                    regimes.get(kernel_name) if regimes is not None else None
                )
                if (
                    regime is not None
                    and regime.version == resources.version
                    and start < regime.horizon
                ):
                    # Transcribed ECU cache hit (touch deferred).
                    decision = regime.decision
                    latency = decision.latency
                    horizon = regime.horizon
                    period = gap + latency
                    if horizon == inf or period <= 0:
                        count = remaining
                    else:
                        span = int(horizon) - start
                        if span <= 0:
                            count = 1
                        else:
                            count = max(
                                1, min(remaining, (span + period - 1) // period)
                            )
                    run_end = start + (count - 1) * period
                    pending_touch[kernel_name] = (regime.touch_impls, run_end)
                    fastforwarded += count
                    gap_cycles += count * gap
                    if kernel_name not in first:
                        first[kernel_name] = start
                        # A kernel's first execution this block may complete
                        # the bulk fold's preconditions: retry at the next
                        # group boundary.
                        try_bulk = bulk_ok
                    counts[kernel_name] = counts.get(kernel_name, 0) + count
                    latency_sums[kernel_name] = (
                        latency_sums.get(kernel_name, 0) + count * latency
                    )
                    key = decision.mode.value
                    exec_by_mode[key] = exec_by_mode.get(key, 0) + count
                    cycles_by_mode[key] = (
                        cycles_by_mode.get(key, 0) + count * latency
                    )
                    kernel_cycles += count * latency
                    if trace is not None:
                        trace.record_execution_run(
                            ExecutionRunRecord(
                                time=start,
                                block=block,
                                kernel=kernel_name,
                                mode=decision.mode,
                                latency=latency,
                                level=decision.level,
                                ise_name=decision.ise_name,
                                count=count,
                                period=period,
                            )
                        )
                    t = run_end + latency
                    last[kernel_name] = t
                    remaining -= count
                else:
                    # Cache miss: flush deferred touches (the cascade may
                    # configure and evict by last_used), then take the very
                    # call the event engine makes.
                    if pending_touch:
                        self._flush_touches(ecu, pending_touch)
                    run = policy.execute_run(kernel_name, start, remaining, gap)
                    decision = run.decision
                    latency = decision.latency
                    count = run.count
                    period = gap + latency
                    if run.cascade_called:
                        ecu_calls += 1
                        fastforwarded += count - 1
                    else:
                        fastforwarded += count
                    if run.event_crossed:
                        events += 1
                    gap_cycles += count * gap
                    if kernel_name not in first:
                        first[kernel_name] = start
                    counts[kernel_name] = counts.get(kernel_name, 0) + count
                    latency_sums[kernel_name] = (
                        latency_sums.get(kernel_name, 0) + count * latency
                    )
                    key = decision.mode.value
                    exec_by_mode[key] = exec_by_mode.get(key, 0) + count
                    cycles_by_mode[key] = (
                        cycles_by_mode.get(key, 0) + count * latency
                    )
                    kernel_cycles += count * latency
                    if trace is not None:
                        trace.record_execution_run(
                            ExecutionRunRecord(
                                time=start,
                                block=block,
                                kernel=kernel_name,
                                mode=decision.mode,
                                latency=latency,
                                level=decision.level,
                                ise_name=decision.ise_name,
                                count=count,
                                period=period,
                            )
                        )
                    t = start + (count - 1) * period + latency
                    last[kernel_name] = t
                    remaining -= count
                    # The miss may have rebuilt a regime: the bulk fold's
                    # preconditions may now hold.
                    try_bulk = bulk_ok
        if pending_touch:
            self._flush_touches(ecu, pending_touch)
        stats.ecu_calls += ecu_calls
        stats.executions_fastforwarded += fastforwarded
        stats.events_processed += events
        stats.gap_cycles += gap_cycles
        stats.kernel_cycles += kernel_cycles
        by_mode = stats.executions_by_mode
        for key, value in exec_by_mode.items():
            by_mode[key] = by_mode.get(key, 0) + value
        by_mode = stats.cycles_by_mode
        for key, value in cycles_by_mode.items():
            by_mode[key] = by_mode.get(key, 0) + value
        return t

    @staticmethod
    def _flush_touches(ecu, pending_touch: Dict[str, Tuple[Tuple[str, ...], int]]) -> None:
        """Apply and clear the packed engine's deferred LRU touches."""
        for impl_names, touch_time in pending_touch.values():
            ecu.apply_touches(impl_names, touch_time)
        pending_touch.clear()

    @staticmethod
    def _observed_timings(
        iteration,
        block_entry: int,
        first: Dict[str, int],
        last: Dict[str, int],
        counts: Dict[str, int],
        latency_sums: Dict[str, int],
    ) -> Dict[str, Tuple[float, float, float]]:
        """Actual (executions, tf, tb) per kernel, as the MPU would measure.

        ``tb`` is the mean time between the end of one execution and the
        start of the next (Eq. 3 models one period as ``latency + tb``):
        the kernel's span minus its own execution latencies, divided by the
        number of in-between intervals.
        """
        observed: Dict[str, Tuple[float, float, float]] = {}
        for kit in iteration.kernels:
            e = counts.get(kit.kernel, 0)
            if e == 0:
                observed[kit.kernel] = (0.0, 0.0, 0.0)
                continue
            tf = float(first[kit.kernel] - block_entry)
            if e > 1:
                span = last[kit.kernel] - first[kit.kernel]
                gaps_total = span - latency_sums[kit.kernel]
                tb = max(0.0, gaps_total / (e - 1))
            else:
                tb = 0.0
            observed[kit.kernel] = (float(e), tf, tb)
        return observed


__all__ = [
    "ENGINE_MODES",
    "ENGINE_MODE_ENV",
    "Simulator",
    "SimulationResult",
    "resolve_engine_mode",
]
