"""The cycle-level simulator of the multi-grained reconfigurable processor.

Replaces the authors' cycle-accurate instruction-set simulator: it executes
an :class:`~repro.sim.program.Application` against a run-time policy, with
simulated wall-clock time advancing through trigger handling, non-kernel
gaps and kernel executions, while reconfigurations complete at the absolute
cycles the reconfiguration controller scheduled.

The simulator is deliberately policy-agnostic -- mRTS, the RISPP-like,
Morpheus/4S-like, offline-optimal and online-optimal systems all run through
the exact same loop, so the comparisons of Figs. 8-10 are apples-to-apples.

Two interchangeable execution engines drive the kernel loop:

* ``stepped`` -- the reference implementation: one
  :meth:`~repro.sim.policy.RuntimePolicy.execute` call per kernel
  execution.
* ``event`` (default) -- event-driven fast-forwarding: between
  availability events the ECU cascade's verdict is piecewise-constant, so
  runs of identical executions are advanced with O(1) arithmetic through
  :meth:`~repro.sim.policy.RuntimePolicy.execute_run` (see
  docs/simulator.md for the equivalence argument).

Both engines produce byte-identical statistics and traces; pick one
explicitly via ``Simulator(engine=...)`` or globally via the ``REPRO_SIM``
environment variable (mirroring the ``REPRO_SELECTOR`` A/B pattern).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fabric.reconfig import ReconfigurationController
from repro.fabric.resources import ResourceBudget
from repro.ise.library import ISELibrary
from repro.sim.policy import RuntimePolicy
from repro.sim.program import Application, interleave
from repro.sim.stats import SimulationStats
from repro.sim.trace import (
    ExecutionRecord,
    ExecutionRunRecord,
    SelectionRecord,
    SimulationTrace,
)
#: Environment variable selecting the execution engine (re-exported from
#: the central registry in :mod:`repro.config_env`).
from repro.config_env import ENGINE_MODE_ENV

#: Valid engine implementations.
ENGINE_MODES = ("stepped", "event")


def resolve_engine_mode(mode: Optional[str] = None) -> str:
    """The engine to use: the explicit ``mode`` if given, else
    ``$REPRO_SIM``, else ``event``."""
    from repro.config_env import sim_engine_mode

    return sim_engine_mode(mode)


@dataclass
class SimulationResult:
    """Everything a simulation run produced."""

    policy_name: str
    budget: ResourceBudget
    stats: SimulationStats
    trace: Optional[SimulationTrace] = None
    controller: Optional[ReconfigurationController] = None

    @property
    def total_cycles(self) -> int:
        return self.stats.total_cycles


class Simulator:
    """Runs one application under one policy on one fabric budget."""

    def __init__(
        self,
        application: Application,
        library: ISELibrary,
        budget: ResourceBudget,
        policy: RuntimePolicy,
        collect_trace: bool = False,
        contention=None,
        engine: Optional[str] = None,
    ):
        """``contention`` optionally supplies a
        :class:`repro.sim.contention.ContentionSchedule`: background tasks
        claiming/releasing fabric at run time (the paper's run-time
        variation (b)).  Events are applied at functional-block boundaries.

        ``engine`` picks the execution engine (``"stepped"`` | ``"event"``);
        ``None`` defers to ``$REPRO_SIM`` and finally to ``event``.
        """
        self.application = application
        self.library = library
        self.budget = budget
        self.policy = policy
        self.collect_trace = collect_trace
        self.contention = contention
        self.engine = engine

    def run(self) -> SimulationResult:
        """Execute the application start to finish; returns the result."""
        engine = resolve_engine_mode(self.engine)
        controller = ReconfigurationController(self.budget)
        self.policy.attach(self.library, controller)
        self.policy.prepare(self.application)

        stats = SimulationStats()
        trace = SimulationTrace() if self.collect_trace else None
        # Profiled triggers are computed once per block: they are burnt into
        # the binary at compile time and never change.
        profiled = {
            block.name: self.application.profiled_triggers(block.name)
            for block in self.application.blocks
        }
        run_kernels = (
            self._run_kernels_event
            if engine == "event"
            else self._run_kernels_stepped
        )

        t = 0
        for iteration in self.application.iterations:
            block_entry = t
            if self.contention is not None:
                self.contention.apply_due(controller, t)
            outcome = self.policy.on_block_entry(
                iteration.block, profiled[iteration.block], t
            )
            t += outcome.charged_overhead_cycles
            stats.overhead_cycles_charged += outcome.charged_overhead_cycles
            stats.overhead_cycles_full += outcome.full_overhead_cycles
            stats.selections += 1
            # Selector-core observability: policies whose selection outcome
            # carries a SelectionResult-shaped detail (duck-typed) feed the
            # cache/evaluation counters; baselines without one are skipped.
            detail = outcome.detail
            if detail is not None and hasattr(detail, "profit_evaluations"):
                stats.record_selection_detail(detail)
                if trace is not None:
                    trace.record_selection(
                        SelectionRecord(
                            time=block_entry,
                            block=iteration.block,
                            mode=getattr(detail, "mode", "?"),
                            rounds=detail.rounds,
                            profit_evaluations=detail.profit_evaluations,
                            evaluations_recomputed=detail.evaluations_recomputed,
                            evaluations_skipped=detail.evaluations_skipped,
                            evaluations_pruned=detail.evaluations_pruned,
                            invalidations=detail.invalidations,
                        )
                    )

            first: Dict[str, int] = {}
            last: Dict[str, int] = {}
            counts: Dict[str, int] = {}
            latency_sums: Dict[str, int] = {}
            t = run_kernels(
                iteration, t, stats, trace, first, last, counts, latency_sums
            )

            observed = self._observed_timings(
                iteration, block_entry, first, last, counts, latency_sums
            )
            self.policy.on_block_exit(iteration.block, observed, t)
            stats.record_block(iteration.block, t - block_entry)
            if trace is not None:
                trace.record_block_window(iteration.block, block_entry, t)

        stats.total_cycles = t
        stats.reconfigurations = controller.reconfig_count
        return SimulationResult(
            policy_name=self.policy.name,
            budget=self.budget,
            stats=stats,
            trace=trace,
            controller=controller,
        )

    # ------------------------------------------------------------ engines
    def _run_kernels_stepped(
        self,
        iteration,
        t: int,
        stats: SimulationStats,
        trace: Optional[SimulationTrace],
        first: Dict[str, int],
        last: Dict[str, int],
        counts: Dict[str, int],
        latency_sums: Dict[str, int],
    ) -> int:
        """The reference loop: one policy call per kernel execution."""
        for kernel_name, gap in interleave(iteration.kernels):
            t += gap
            stats.gap_cycles += gap
            decision = self.policy.execute(kernel_name, t)
            stats.ecu_calls += 1
            first.setdefault(kernel_name, t)
            counts[kernel_name] = counts.get(kernel_name, 0) + 1
            latency_sums[kernel_name] = (
                latency_sums.get(kernel_name, 0) + decision.latency
            )
            stats.record_execution(decision.mode, decision.latency)
            if trace is not None:
                trace.record_execution(
                    ExecutionRecord(
                        time=t,
                        block=iteration.block,
                        kernel=kernel_name,
                        mode=decision.mode,
                        latency=decision.latency,
                        level=decision.level,
                        ise_name=decision.ise_name,
                    )
                )
            t += decision.latency
            last[kernel_name] = t
        return t

    def _run_kernels_event(
        self,
        iteration,
        t: int,
        stats: SimulationStats,
        trace: Optional[SimulationTrace],
        first: Dict[str, int],
        last: Dict[str, int],
        counts: Dict[str, int],
        latency_sums: Dict[str, int],
    ) -> int:
        """Event-driven fast-forwarding: maximal runs of back-to-back
        executions of one kernel are advanced in O(1) per regime instead of
        O(1) per execution.  The policy's :meth:`execute_run` bounds each
        batch by the next availability event, so the resulting statistics
        and (expanded) trace are byte-identical to the stepped loop."""
        steps = interleave(iteration.kernels)
        n_steps = len(steps)
        index = 0
        while index < n_steps:
            kernel_name, gap = steps[index]
            stop = index + 1
            while stop < n_steps and steps[stop] == (kernel_name, gap):
                stop += 1
            remaining = stop - index
            index = stop
            while remaining > 0:
                start = t + gap
                run = self.policy.execute_run(kernel_name, start, remaining, gap)
                decision = run.decision
                count = run.count
                period = gap + decision.latency
                if run.cascade_called:
                    stats.ecu_calls += 1
                    stats.executions_fastforwarded += count - 1
                else:
                    stats.executions_fastforwarded += count
                if run.event_crossed:
                    stats.events_processed += 1
                stats.gap_cycles += count * gap
                first.setdefault(kernel_name, start)
                counts[kernel_name] = counts.get(kernel_name, 0) + count
                latency_sums[kernel_name] = (
                    latency_sums.get(kernel_name, 0) + count * decision.latency
                )
                stats.record_execution_run(decision.mode, decision.latency, count)
                if trace is not None:
                    trace.record_execution_run(
                        ExecutionRunRecord(
                            time=start,
                            block=iteration.block,
                            kernel=kernel_name,
                            mode=decision.mode,
                            latency=decision.latency,
                            level=decision.level,
                            ise_name=decision.ise_name,
                            count=count,
                            period=period,
                        )
                    )
                t = start + (count - 1) * period + decision.latency
                last[kernel_name] = t
                remaining -= count
        return t

    @staticmethod
    def _observed_timings(
        iteration,
        block_entry: int,
        first: Dict[str, int],
        last: Dict[str, int],
        counts: Dict[str, int],
        latency_sums: Dict[str, int],
    ) -> Dict[str, Tuple[float, float, float]]:
        """Actual (executions, tf, tb) per kernel, as the MPU would measure.

        ``tb`` is the mean time between the end of one execution and the
        start of the next (Eq. 3 models one period as ``latency + tb``):
        the kernel's span minus its own execution latencies, divided by the
        number of in-between intervals.
        """
        observed: Dict[str, Tuple[float, float, float]] = {}
        for kit in iteration.kernels:
            e = counts.get(kit.kernel, 0)
            if e == 0:
                observed[kit.kernel] = (0.0, 0.0, 0.0)
                continue
            tf = float(first[kit.kernel] - block_entry)
            if e > 1:
                span = last[kit.kernel] - first[kit.kernel]
                gaps_total = span - latency_sums[kit.kernel]
                tb = max(0.0, gaps_total / (e - 1))
            else:
                tb = 0.0
            observed[kit.kernel] = (float(e), tf, tb)
        return observed


__all__ = [
    "ENGINE_MODES",
    "ENGINE_MODE_ENV",
    "Simulator",
    "SimulationResult",
    "resolve_engine_mode",
]
