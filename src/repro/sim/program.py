"""The application model: functional blocks, kernels, and their dynamics.

An application (e.g. the H.264 encoder of the paper's evaluation) is a set
of *functional blocks*, each containing several kernels.  At run time the
application executes a sequence of *block iterations* (e.g. one iteration of
every block per video frame); within an iteration each kernel executes a
number of times that varies with the input data -- exactly the run-time
variation (Fig. 2) that motivates a run-time system.

The core processor is single-threaded: a block iteration is an interleaved
sequence of kernel executions, each preceded by a `gap` of non-accelerable
code (loop control, data marshalling, the surrounding algorithm).  The
interleaving is deterministic (proportional merge), so simulations are
exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.ise.kernel import Kernel
from repro.sim.trigger import TriggerInstruction
from repro.util.validation import ReproError, ValidationError, check_non_negative


@dataclass(frozen=True)
class KernelIteration:
    """Execution demand of one kernel within one block iteration."""

    kernel: str
    executions: int
    gap: int  #: cycles of non-kernel code before each execution

    def __post_init__(self) -> None:
        if not self.kernel:
            raise ValidationError("KernelIteration.kernel must be non-empty")
        check_non_negative("KernelIteration.executions", self.executions)
        check_non_negative("KernelIteration.gap", self.gap)


@dataclass(frozen=True)
class BlockIteration:
    """One iteration of a functional block (e.g. one video frame's worth)."""

    block: str
    kernels: Tuple[KernelIteration, ...]

    def __init__(self, block: str, kernels: Sequence[KernelIteration]):
        if not block:
            raise ValidationError("BlockIteration.block must be non-empty")
        names = [k.kernel for k in kernels]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate kernels in block iteration: {names}")
        object.__setattr__(self, "block", block)
        object.__setattr__(self, "kernels", tuple(kernels))

    def executions_of(self, kernel: str) -> int:
        for it in self.kernels:
            if it.kernel == kernel:
                return it.executions
        return 0


@dataclass(frozen=True)
class FunctionalBlock:
    """A functional block: a named group of kernels."""

    name: str
    kernels: Tuple[Kernel, ...]

    def __init__(self, name: str, kernels: Sequence[Kernel]):
        if not name:
            raise ValidationError("FunctionalBlock.name must be non-empty")
        if not kernels:
            raise ValidationError(f"functional block {name!r} needs kernels")
        names = [k.name for k in kernels]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate kernels in block {name!r}: {names}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "kernels", tuple(kernels))

    def kernel_names(self) -> List[str]:
        return [k.name for k in self.kernels]

    def kernel(self, name: str) -> Kernel:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(f"block {self.name!r} has no kernel {name!r}")


def interleave(kernels: Sequence[KernelIteration]) -> List[Tuple[str, int]]:
    """Deterministic proportional interleaving of kernel executions.

    The ``j``-th execution of a kernel with ``e`` executions is placed at
    virtual position ``(j + 0.5) / e``; the merged order approximates how a
    real block loops over its kernels per macroblock / data unit.  Returns a
    list of ``(kernel, gap_before_execution)`` steps.
    """
    events: List[Tuple[float, str, int]] = []
    for it in kernels:
        for j in range(it.executions):
            position = (j + 0.5) / it.executions
            events.append((position, it.kernel, it.gap))
    events.sort(key=lambda ev: (ev[0], ev[1]))
    return [(kernel, gap) for _, kernel, gap in events]


class Application:
    """A complete application: blocks plus the dynamic iteration sequence."""

    def __init__(
        self,
        name: str,
        blocks: Sequence[FunctionalBlock],
        iterations: Sequence[BlockIteration],
    ):
        if not blocks:
            raise ValidationError(f"application {name!r} needs functional blocks")
        self.name = name
        self._blocks: Dict[str, FunctionalBlock] = {}
        for block in blocks:
            if block.name in self._blocks:
                raise ReproError(f"duplicate block {block.name!r}")
            self._blocks[block.name] = block
        for iteration in iterations:
            if iteration.block not in self._blocks:
                raise ReproError(
                    f"iteration references unknown block {iteration.block!r}"
                )
            block = self._blocks[iteration.block]
            for kit in iteration.kernels:
                block.kernel(kit.kernel)  # raises KeyError if foreign
        self.iterations: Tuple[BlockIteration, ...] = tuple(iterations)

    # ------------------------------------------------------------ access
    @property
    def blocks(self) -> List[FunctionalBlock]:
        return list(self._blocks.values())

    def block(self, name: str) -> FunctionalBlock:
        try:
            return self._blocks[name]
        except KeyError:
            raise KeyError(f"unknown block {name!r}") from None

    def all_kernels(self) -> List[Kernel]:
        return [k for block in self.blocks for k in block.kernels]

    def iterations_of(self, block_name: str) -> List[BlockIteration]:
        return [it for it in self.iterations if it.block == block_name]

    # ----------------------------------------------------------- profile
    def profiled_triggers(self, block_name: str) -> List[TriggerInstruction]:
        """The compile-time trigger instructions of ``block_name``.

        Offline profiling runs the application in RISC mode and averages
        each kernel's executions, time to first execution and inter-execution
        time across the block's iterations -- these are the numbers the
        programmer embeds into the binary (Section 4).
        """
        block = self._blocks[block_name]
        iterations = self.iterations_of(block_name)
        if not iterations:
            return [
                TriggerInstruction(k.name, 0.0, 0.0, 0.0) for k in block.kernels
            ]
        sums: Dict[str, List[float]] = {
            k.name: [0.0, 0.0, 0.0] for k in block.kernels
        }
        for iteration in iterations:
            timings = self._risc_timings(block, iteration)
            for kernel_name, (executions, tf, tb) in timings.items():
                sums[kernel_name][0] += executions
                sums[kernel_name][1] += tf
                sums[kernel_name][2] += tb
        n = len(iterations)
        return [
            TriggerInstruction(
                kernel=k.name,
                executions=sums[k.name][0] / n,
                time_to_first=sums[k.name][1] / n,
                time_between=sums[k.name][2] / n,
            )
            for k in block.kernels
        ]

    def _risc_timings(
        self, block: FunctionalBlock, iteration: BlockIteration
    ) -> Dict[str, Tuple[float, float, float]]:
        """(executions, tf, tb) of every kernel when the iteration runs in
        RISC mode -- the measurement an offline profiler would record."""
        latencies = {k.name: k.risc_latency for k in block.kernels}
        t = 0
        first: Dict[str, int] = {}
        last: Dict[str, int] = {}
        counts: Dict[str, int] = {}
        for kernel_name, gap in interleave(iteration.kernels):
            t += gap
            first.setdefault(kernel_name, t)
            counts[kernel_name] = counts.get(kernel_name, 0) + 1
            t += latencies[kernel_name]
            last[kernel_name] = t
        timings: Dict[str, Tuple[float, float, float]] = {}
        for kernel in block.kernels:
            e = counts.get(kernel.name, 0)
            if e == 0:
                timings[kernel.name] = (0.0, 0.0, 0.0)
                continue
            tf = float(first[kernel.name])
            if e > 1:
                span = last[kernel.name] - first[kernel.name]
                gaps_total = span - e * latencies[kernel.name]
                tb = max(0.0, gaps_total / (e - 1))
            else:
                tb = 0.0
            timings[kernel.name] = (float(e), tf, tb)
        return timings


__all__ = [
    "KernelIteration",
    "BlockIteration",
    "FunctionalBlock",
    "Application",
    "interleave",
]
