"""Aggregate statistics of a simulation run.

Everything the evaluation section of the paper reports is derived from
these counters: total execution cycles (Fig. 8), speedups (Figs. 8/10),
execution-mode breakdowns (the monoCG / intermediate-ISE analyses), and the
run-time system overhead (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.ecu import ExecutionMode


@dataclass
class SimulationStats:
    """Counters accumulated by :class:`repro.sim.simulator.Simulator`."""

    total_cycles: int = 0
    gap_cycles: int = 0                 #: non-kernel application code
    kernel_cycles: int = 0              #: cycles spent inside kernel executions
    overhead_cycles_charged: int = 0    #: selector cycles that delayed the app
    overhead_cycles_full: int = 0       #: selector cycles including hidden part
    executions_by_mode: Dict[str, int] = field(default_factory=dict)
    cycles_by_mode: Dict[str, int] = field(default_factory=dict)
    block_cycles: Dict[str, int] = field(default_factory=dict)
    block_entries: Dict[str, int] = field(default_factory=dict)
    reconfigurations: int = 0
    selections: int = 0

    # ------------------------------------------------------------ update
    def record_execution(self, mode: "ExecutionMode", latency: int) -> None:
        key = mode.value
        self.executions_by_mode[key] = self.executions_by_mode.get(key, 0) + 1
        self.cycles_by_mode[key] = self.cycles_by_mode.get(key, 0) + latency
        self.kernel_cycles += latency

    def record_block(self, block: str, cycles: int) -> None:
        self.block_cycles[block] = self.block_cycles.get(block, 0) + cycles
        self.block_entries[block] = self.block_entries.get(block, 0) + 1

    # ----------------------------------------------------------- queries
    @property
    def total_executions(self) -> int:
        return sum(self.executions_by_mode.values())

    def executions(self, mode_value: str) -> int:
        return self.executions_by_mode.get(mode_value, 0)

    def mode_fraction(self, mode_value: str) -> float:
        """Fraction of executions served in ``mode_value``."""
        total = self.total_executions
        if total == 0:
            return 0.0
        return self.executions_by_mode.get(mode_value, 0) / total

    def accelerated_fraction(self) -> float:
        """Fraction of executions served by any hardware implementation."""
        return 1.0 - self.mode_fraction("risc")

    def overhead_fraction(self) -> float:
        """Charged run-time-system overhead as a fraction of total cycles."""
        if self.total_cycles == 0:
            return 0.0
        return self.overhead_cycles_charged / self.total_cycles

    def mean_block_cycles(self) -> float:
        entries = sum(self.block_entries.values())
        if entries == 0:
            return 0.0
        return sum(self.block_cycles.values()) / entries

    def speedup_over(self, baseline: "SimulationStats") -> float:
        """Speedup of this run relative to ``baseline`` (e.g. RISC mode)."""
        if self.total_cycles == 0:
            return 0.0
        return baseline.total_cycles / self.total_cycles

    # ------------------------------------------------------ serialisation
    def to_payload(self) -> Dict[str, object]:
        """Canonical JSON-able form (sorted keys throughout) -- the stats
        half of the golden-trace regression snapshots."""
        return {
            "total_cycles": self.total_cycles,
            "gap_cycles": self.gap_cycles,
            "kernel_cycles": self.kernel_cycles,
            "overhead_cycles_charged": self.overhead_cycles_charged,
            "overhead_cycles_full": self.overhead_cycles_full,
            "executions_by_mode": dict(sorted(self.executions_by_mode.items())),
            "cycles_by_mode": dict(sorted(self.cycles_by_mode.items())),
            "block_cycles": dict(sorted(self.block_cycles.items())),
            "block_entries": dict(sorted(self.block_entries.items())),
            "reconfigurations": self.reconfigurations,
            "selections": self.selections,
        }


__all__ = ["SimulationStats"]
