"""Aggregate statistics of a simulation run.

Everything the evaluation section of the paper reports is derived from
these counters: total execution cycles (Fig. 8), speedups (Figs. 8/10),
execution-mode breakdowns (the monoCG / intermediate-ISE analyses), and the
run-time system overhead (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.ecu import ExecutionMode


@dataclass
class SimulationStats:
    """Counters accumulated by :class:`repro.sim.simulator.Simulator`."""

    total_cycles: int = 0
    gap_cycles: int = 0                 #: non-kernel application code
    kernel_cycles: int = 0              #: cycles spent inside kernel executions
    overhead_cycles_charged: int = 0    #: selector cycles that delayed the app
    overhead_cycles_full: int = 0       #: selector cycles including hidden part
    executions_by_mode: Dict[str, int] = field(default_factory=dict)
    cycles_by_mode: Dict[str, int] = field(default_factory=dict)
    block_cycles: Dict[str, int] = field(default_factory=dict)
    block_entries: Dict[str, int] = field(default_factory=dict)
    reconfigurations: int = 0
    selections: int = 0
    # Selector-core counters (policies exposing a selection detail only;
    # see repro.core.selector.SelectionResult).  Deliberately NOT part of
    # :meth:`to_payload`: the golden-trace snapshots compare whole payloads,
    # and these describe how the reproduction computed the selection, not
    # what the modelled hardware did.
    profit_evaluations: int = 0         #: logical Fig. 6 evaluations
    evaluations_recomputed: int = 0     #: Eq. 2-4 computations actually run
    evaluations_skipped: int = 0        #: served from the incremental cache
    evaluations_pruned: int = 0         #: discarded by the profit upper bound
    selector_invalidations: int = 0     #: cache entries dirtied by commits
    selector_rounds: int = 0            #: greedy rounds across all selections
    # Engine counters (how the reproduction *executed* the run, not what the
    # modelled hardware did -- excluded from :meth:`to_payload` like the
    # selector counters, so golden snapshots stay engine-independent).
    ecu_calls: int = 0                  #: Fig. 7 cascade evaluations
    executions_fastforwarded: int = 0   #: executions served without a cascade
    events_processed: int = 0           #: regime recomputations (horizon
                                        #: crossings / fabric mutations)

    # ------------------------------------------------------------ update
    def record_execution(self, mode: "ExecutionMode", latency: int) -> None:
        key = mode.value
        self.executions_by_mode[key] = self.executions_by_mode.get(key, 0) + 1
        self.cycles_by_mode[key] = self.cycles_by_mode.get(key, 0) + latency
        self.kernel_cycles += latency

    def record_execution_run(
        self, mode: "ExecutionMode", latency: int, count: int
    ) -> None:
        """O(1) accounting for ``count`` identical executions."""
        key = mode.value
        self.executions_by_mode[key] = (
            self.executions_by_mode.get(key, 0) + count
        )
        self.cycles_by_mode[key] = (
            self.cycles_by_mode.get(key, 0) + count * latency
        )
        self.kernel_cycles += count * latency

    def record_block(self, block: str, cycles: int) -> None:
        self.block_cycles[block] = self.block_cycles.get(block, 0) + cycles
        self.block_entries[block] = self.block_entries.get(block, 0) + 1

    def record_selection_detail(self, detail) -> None:
        """Accumulate the selector-core counters of one selection.

        ``detail`` is duck-typed (any object with the
        :class:`~repro.core.selector.SelectionResult` counter attributes),
        so baseline policies without a selection detail simply never call
        this.
        """
        self.profit_evaluations += detail.profit_evaluations
        self.evaluations_recomputed += detail.evaluations_recomputed
        self.evaluations_skipped += detail.evaluations_skipped
        self.evaluations_pruned += detail.evaluations_pruned
        self.selector_invalidations += detail.invalidations
        self.selector_rounds += detail.rounds

    # ----------------------------------------------------------- queries
    @property
    def total_executions(self) -> int:
        return sum(self.executions_by_mode.values())

    def executions(self, mode_value: str) -> int:
        return self.executions_by_mode.get(mode_value, 0)

    def mode_fraction(self, mode_value: str) -> float:
        """Fraction of executions served in ``mode_value``."""
        total = self.total_executions
        if total == 0:
            return 0.0
        return self.executions_by_mode.get(mode_value, 0) / total

    def accelerated_fraction(self) -> float:
        """Fraction of executions served by any hardware implementation."""
        return 1.0 - self.mode_fraction("risc")

    def overhead_fraction(self) -> float:
        """Charged run-time-system overhead as a fraction of total cycles."""
        if self.total_cycles == 0:
            return 0.0
        return self.overhead_cycles_charged / self.total_cycles

    def mean_block_cycles(self) -> float:
        entries = sum(self.block_entries.values())
        if entries == 0:
            return 0.0
        return sum(self.block_cycles.values()) / entries

    def selector_cache_hit_rate(self) -> float:
        """Fraction of logical evaluations the selector did not compute
        (cache hits plus bound prunes); 0.0 when nothing was recorded."""
        if self.profit_evaluations == 0:
            return 0.0
        return (
            self.evaluations_skipped + self.evaluations_pruned
        ) / self.profit_evaluations

    def selector_payload(self) -> Dict[str, object]:
        """The selector-core counters as a JSON-able dict.

        Kept separate from :meth:`to_payload` on purpose -- the golden
        snapshots compare the full payload and must not depend on the
        selector implementation.
        """
        return {
            "profit_evaluations": self.profit_evaluations,
            "evaluations_recomputed": self.evaluations_recomputed,
            "evaluations_skipped": self.evaluations_skipped,
            "evaluations_pruned": self.evaluations_pruned,
            "selector_invalidations": self.selector_invalidations,
            "selector_rounds": self.selector_rounds,
            "cache_hit_rate": self.selector_cache_hit_rate(),
        }

    def engine_payload(self) -> Dict[str, object]:
        """The execution-engine counters as a JSON-able dict.

        Like :meth:`selector_payload`, deliberately separate from
        :meth:`to_payload`: the stepped and event-driven engines must
        produce byte-identical golden payloads while reporting how much
        cascade work each actually performed.
        """
        total = self.total_executions
        return {
            "ecu_calls": self.ecu_calls,
            "executions_fastforwarded": self.executions_fastforwarded,
            "events_processed": self.events_processed,
            "fastforward_fraction": (
                self.executions_fastforwarded / total if total else 0.0
            ),
        }

    def speedup_over(self, baseline: "SimulationStats") -> float:
        """Speedup of this run relative to ``baseline`` (e.g. RISC mode)."""
        if self.total_cycles == 0:
            return 0.0
        return baseline.total_cycles / self.total_cycles

    # ------------------------------------------------------ serialisation
    def to_payload(self) -> Dict[str, object]:
        """Canonical JSON-able form (sorted keys throughout) -- the stats
        half of the golden-trace regression snapshots."""
        return {
            "total_cycles": self.total_cycles,
            "gap_cycles": self.gap_cycles,
            "kernel_cycles": self.kernel_cycles,
            "overhead_cycles_charged": self.overhead_cycles_charged,
            "overhead_cycles_full": self.overhead_cycles_full,
            "executions_by_mode": dict(sorted(self.executions_by_mode.items())),
            "cycles_by_mode": dict(sorted(self.cycles_by_mode.items())),
            "block_cycles": dict(sorted(self.block_cycles.items())),
            "block_entries": dict(sorted(self.block_entries.items())),
            "reconfigurations": self.reconfigurations,
            "selections": self.selections,
        }


__all__ = ["SimulationStats"]
