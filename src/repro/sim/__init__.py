"""Cycle-level simulation of the multi-grained reconfigurable processor.

The simulator executes an :class:`~repro.sim.program.Application` -- a
sequence of functional-block iterations, each announced by trigger
instructions and consisting of interleaved kernel executions -- against a
run-time policy (mRTS or one of the baselines).  Reconfigurations proceed in
wall-clock simulated time; every kernel execution is steered by the policy's
execution-control logic onto the best available implementation.
"""

from repro.sim.trigger import TriggerInstruction
from repro.sim.program import (
    KernelIteration,
    BlockIteration,
    FunctionalBlock,
    Application,
)
from repro.sim.policy import RuntimePolicy, SelectionOutcome
from repro.sim.trace import ExecutionRecord, SimulationTrace
from repro.sim.stats import SimulationStats
from repro.sim.simulator import Simulator, SimulationResult
from repro.sim.contention import ContentionEvent, ContentionSchedule
from repro.sim.multitask import Task, MultiTaskSimulator, MultiTaskResult, TaskResult

__all__ = [
    "TriggerInstruction",
    "KernelIteration",
    "BlockIteration",
    "FunctionalBlock",
    "Application",
    "RuntimePolicy",
    "SelectionOutcome",
    "ExecutionRecord",
    "SimulationTrace",
    "SimulationStats",
    "Simulator",
    "SimulationResult",
    "ContentionEvent",
    "ContentionSchedule",
    "Task",
    "MultiTaskSimulator",
    "MultiTaskResult",
    "TaskResult",
]
