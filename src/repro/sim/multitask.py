"""Multi-task co-simulation: several applications sharing one fabric.

Section 1 of the paper names the fabric being "shared among various tasks"
as a run-time variation only a run-time system can handle.
:mod:`repro.sim.contention` models the *other* task as an opaque area
claimer; this module goes further and actually co-simulates several
applications, each with its own run-time policy, on one processor:

* the core time-multiplexes the tasks at functional-block granularity
  (a block is the natural preemption point -- triggers and selections
  happen there);
* all tasks share one :class:`ReconfigurationController`: one pool of PRCs
  and CG slots, one sequential bitstream port, per-policy pinned
  configurations, LRU eviction across task boundaries;
* every task keeps its own trace/statistics, so throughput and fairness
  can be analysed per task.

The scheduler is round-robin over runnable tasks; a task is finished when
its iteration sequence is exhausted.  Kernel names must be globally unique
across tasks (enforced), since the fabric's configuration state is keyed
by implementation names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fabric.reconfig import ReconfigurationController
from repro.fabric.resources import ResourceBudget
from repro.ise.library import ISELibrary
from repro.sim.policy import RuntimePolicy
from repro.sim.program import Application, interleave
from repro.sim.stats import SimulationStats
from repro.sim.trace import ExecutionRecord, SimulationTrace
from repro.util.validation import ReproError


@dataclass
class Task:
    """One co-scheduled application with its own run-time policy."""

    name: str
    application: Application
    library: ISELibrary
    policy: RuntimePolicy

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("Task.name must be non-empty")


@dataclass
class TaskResult:
    """Per-task outcome of a co-simulation."""

    name: str
    stats: SimulationStats
    trace: Optional[SimulationTrace]
    finished_at: int  #: cycle at which the task's last block completed


@dataclass
class MultiTaskResult:
    """Outcome of a multi-task run."""

    budget: ResourceBudget
    total_cycles: int
    tasks: Dict[str, TaskResult]
    controller: ReconfigurationController

    def task(self, name: str) -> TaskResult:
        try:
            return self.tasks[name]
        except KeyError:
            raise KeyError(f"unknown task {name!r}") from None

    def slowdown_vs(self, name: str, alone_cycles: int) -> float:
        """How much longer the task ran than it would have alone (wall
        clock; co-scheduling always stretches wall time because the core is
        time-shared)."""
        return self.task(name).finished_at / alone_cycles


class MultiTaskSimulator:
    """Co-simulates tasks sharing one core and one reconfigurable fabric."""

    def __init__(
        self,
        tasks: Sequence[Task],
        budget: ResourceBudget,
        collect_trace: bool = False,
    ):
        if not tasks:
            raise ReproError("MultiTaskSimulator needs at least one task")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate task names: {names}")
        kernel_names: Dict[str, str] = {}
        for task in tasks:
            for kernel in task.application.all_kernels():
                owner = kernel_names.setdefault(kernel.name, task.name)
                if owner != task.name:
                    raise ReproError(
                        f"kernel {kernel.name!r} appears in tasks "
                        f"{owner!r} and {task.name!r}; kernel names must be "
                        "globally unique across co-scheduled tasks"
                    )
        self.tasks = list(tasks)
        self.budget = budget
        self.collect_trace = collect_trace

    def run(self) -> MultiTaskResult:
        controller = ReconfigurationController(self.budget)
        for task in self.tasks:
            task.policy.attach(task.library, controller)
            task.policy.prepare(task.application)

        stats = {t.name: SimulationStats() for t in self.tasks}
        traces = {
            t.name: SimulationTrace() if self.collect_trace else None
            for t in self.tasks
        }
        profiled = {
            t.name: {
                block.name: t.application.profiled_triggers(block.name)
                for block in t.application.blocks
            }
            for t in self.tasks
        }
        cursors = {t.name: 0 for t in self.tasks}
        finished_at = {t.name: 0 for t in self.tasks}

        t_now = 0
        # Round-robin at functional-block granularity.
        runnable = [t for t in self.tasks]
        index = 0
        while runnable:
            task = runnable[index % len(runnable)]
            iteration = task.application.iterations[cursors[task.name]]
            t_now = self._run_block(
                task,
                iteration,
                profiled[task.name][iteration.block],
                t_now,
                stats[task.name],
                traces[task.name],
            )
            cursors[task.name] += 1
            if cursors[task.name] >= len(task.application.iterations):
                finished_at[task.name] = t_now
                position = runnable.index(task)
                runnable.remove(task)
                index = position  # next task slides into this slot
            else:
                index += 1

        results = {}
        for task in self.tasks:
            task_stats = stats[task.name]
            task_stats.total_cycles = (
                task_stats.gap_cycles
                + task_stats.kernel_cycles
                + task_stats.overhead_cycles_charged
            )
            results[task.name] = TaskResult(
                name=task.name,
                stats=task_stats,
                trace=traces[task.name],
                finished_at=finished_at[task.name],
            )
        return MultiTaskResult(
            budget=self.budget,
            total_cycles=t_now,
            tasks=results,
            controller=controller,
        )

    def _run_block(
        self,
        task: Task,
        iteration,
        triggers,
        t_now: int,
        stats: SimulationStats,
        trace: Optional[SimulationTrace],
    ) -> int:
        block_entry = t_now
        outcome = task.policy.on_block_entry(iteration.block, triggers, t_now)
        t_now += outcome.charged_overhead_cycles
        stats.overhead_cycles_charged += outcome.charged_overhead_cycles
        stats.overhead_cycles_full += outcome.full_overhead_cycles
        stats.selections += 1

        first: Dict[str, int] = {}
        last: Dict[str, int] = {}
        counts: Dict[str, int] = {}
        latency_sums: Dict[str, int] = {}
        for kernel_name, gap in interleave(iteration.kernels):
            t_now += gap
            stats.gap_cycles += gap
            decision = task.policy.execute(kernel_name, t_now)
            first.setdefault(kernel_name, t_now)
            counts[kernel_name] = counts.get(kernel_name, 0) + 1
            latency_sums[kernel_name] = (
                latency_sums.get(kernel_name, 0) + decision.latency
            )
            stats.record_execution(decision.mode, decision.latency)
            if trace is not None:
                trace.record_execution(
                    ExecutionRecord(
                        time=t_now,
                        block=iteration.block,
                        kernel=kernel_name,
                        mode=decision.mode,
                        latency=decision.latency,
                        level=decision.level,
                        ise_name=decision.ise_name,
                    )
                )
            t_now += decision.latency
            last[kernel_name] = t_now

        observed: Dict[str, Tuple[float, float, float]] = {}
        for kit in iteration.kernels:
            e = counts.get(kit.kernel, 0)
            if e == 0:
                observed[kit.kernel] = (0.0, 0.0, 0.0)
                continue
            tf = float(first[kit.kernel] - block_entry)
            if e > 1:
                span = last[kit.kernel] - first[kit.kernel]
                tb = max(0.0, (span - latency_sums[kit.kernel]) / (e - 1))
            else:
                tb = 0.0
            observed[kit.kernel] = (float(e), tf, tb)
        task.policy.on_block_exit(iteration.block, observed, t_now)
        stats.record_block(iteration.block, t_now - block_entry)
        if trace is not None:
            trace.record_block_window(iteration.block, block_entry, t_now)
        return t_now


__all__ = ["Task", "TaskResult", "MultiTaskResult", "MultiTaskSimulator"]
