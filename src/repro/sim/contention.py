"""Fabric contention: other tasks claiming reconfigurable fabric at run time.

Section 1 of the paper motivates run-time selection with three run-time
variations; variation (b) is "the available fine- and coarse-grained
reconfigurable fabric (shared among various tasks)".  This module models
that sharing: a :class:`ContentionSchedule` describes when a background
task claims and releases fabric, and the simulator applies it between
functional blocks.  Claimed area is occupied by pinned *blocker*
configurations, so the run-time system simply sees less allocatable fabric
-- exactly what a real co-running task's accelerators would look like.

Claims are opportunistic: a task can only take fabric that is free or
evictable at that moment (it cannot displace the pinned configurations of
the foreground application mid-block); whatever it obtains stays pinned
until the matching release.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.fabric.cost_model import DEFAULT_COST_MODEL
from repro.fabric.datapath import DataPathSpec, FabricType
from repro.fabric.reconfig import ReconfigurationController
from repro.util.validation import ValidationError, check_non_negative

#: Synthetic data paths used to occupy fabric on behalf of other tasks.
_BLOCKER_SPECS = {
    FabricType.FG: DataPathSpec(name="task.blocker_fg", word_ops=1, sw_cycles=1),
    FabricType.CG: DataPathSpec(name="task.blocker_cg", word_ops=1, sw_cycles=1),
}


@dataclass(frozen=True)
class ContentionEvent:
    """One change in a background task's fabric demand.

    At ``time`` the task wants to hold ``n_prcs`` PRCs and ``n_cg_slots``
    CG context slots (absolute targets, not deltas).  A target of zero
    releases everything the task holds.
    """

    time: int
    task: str
    n_prcs: int = 0
    n_cg_slots: int = 0

    def __post_init__(self) -> None:
        check_non_negative("ContentionEvent.time", self.time)
        check_non_negative("ContentionEvent.n_prcs", self.n_prcs)
        check_non_negative("ContentionEvent.n_cg_slots", self.n_cg_slots)
        if not self.task:
            raise ValidationError("ContentionEvent.task must be non-empty")


class ContentionSchedule:
    """Applies contention events to a reconfiguration controller."""

    def __init__(self, events: Sequence[ContentionEvent]):
        self.events: List[ContentionEvent] = sorted(events, key=lambda e: e.time)
        self._cursor = 0
        #: task -> (held PRCs, held CG slots)
        self.held: Dict[str, Tuple[int, int]] = {}
        #: (time, task, wanted, got) of claims that could not be fully met
        self.shortfalls: List[Tuple[int, str, Tuple[int, int], Tuple[int, int]]] = []

    @staticmethod
    def periodic(
        period: int,
        duty_prcs: int,
        duty_cg_slots: int,
        until: int,
        task: str = "bgtask",
        phase: int = 0,
    ) -> "ContentionSchedule":
        """An on/off background task: claims fabric for every other period."""
        events = []
        time, active = phase, True
        while time < until:
            events.append(
                ContentionEvent(
                    time=time,
                    task=task,
                    n_prcs=duty_prcs if active else 0,
                    n_cg_slots=duty_cg_slots if active else 0,
                )
            )
            time += period
            active = not active
        return ContentionSchedule(events)

    # ------------------------------------------------------------- applying
    def apply_due(self, controller: ReconfigurationController, now: int) -> None:
        """Apply every event with ``time <= now`` (called between blocks)."""
        while self._cursor < len(self.events) and self.events[self._cursor].time <= now:
            self._apply(controller, self.events[self._cursor], now)
            self._cursor += 1

    def _apply(
        self,
        controller: ReconfigurationController,
        event: ContentionEvent,
        now: int,
    ) -> None:
        owner = f"task:{event.task}"
        # Release current holdings, then claim up to the new targets.
        controller.resources.remove_owner(owner, now)
        got_fg = self._claim(controller, FabricType.FG, event.n_prcs, owner, now)
        got_cg = self._claim(controller, FabricType.CG, event.n_cg_slots, owner, now)
        self.held[event.task] = (got_fg, got_cg)
        wanted = (event.n_prcs, event.n_cg_slots)
        if (got_fg, got_cg) != wanted:
            self.shortfalls.append((now, event.task, wanted, (got_fg, got_cg)))

    @staticmethod
    def _claim(
        controller: ReconfigurationController,
        fabric: FabricType,
        units: int,
        owner: str,
        now: int,
    ) -> int:
        impl = DEFAULT_COST_MODEL.implement(_BLOCKER_SPECS[fabric], fabric)
        got = 0
        for _ in range(units):
            if controller.resources.evict(fabric, impl.area, now) < impl.area:
                break
            controller.resources.add_copy(impl, ready_at=now, pinned_by=owner)
            got += 1
        return got

    def total_held(self, fabric: FabricType) -> int:
        """Units currently held across all tasks."""
        index = 0 if fabric is FabricType.FG else 1
        return sum(h[index] for h in self.held.values())


__all__ = ["ContentionEvent", "ContentionSchedule"]
