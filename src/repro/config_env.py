"""Central, typed access to the ``REPRO_*`` environment variables.

Every environment variable the run-time system honours is declared here,
with one typed accessor each.  This is the **only** module in ``repro``
allowed to touch ``os.environ`` -- the determinism linter
(:mod:`repro.analysis.lint`, rule ``env-read``) enforces it statically, so
an ad-hoc ``os.environ.get`` in a hot path can never silently make two
"identical" runs diverge based on ambient shell state.

Variables
---------
``REPRO_SELECTOR``
    Selector implementation (``naive`` | ``incremental`` | ``packed``);
    see :func:`repro.core.selector.resolve_selector_mode`.
``REPRO_SIM``
    Simulator execution engine (``stepped`` | ``event`` | ``packed``);
    see :func:`repro.sim.simulator.resolve_engine_mode`.
``REPRO_CACHE_DIR``
    Default location of the content-addressed sweep cell cache
    (``.repro_cache`` when unset); explicit ``cache_dir`` arguments and the
    ``--cache-dir`` CLI flag always win.
``REPRO_WIRE``
    Socket transport encoding (``json`` | ``binary``); see
    :func:`wire_mode`.  ``binary`` (the default) advertises the ``v2``
    columnar wire capability in the handshake; a connection only speaks
    binary when both peers advertised it, so mixed settings fall back to
    JSON rather than failing.

All accessors share the same precedence: an explicit argument beats the
environment, which beats the documented default.  Invalid values raise
:class:`~repro.util.validation.ReproError` at resolution time instead of
being carried silently into cache keys or golden traces.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from repro.util.validation import ReproError

#: Environment variable selecting the ISE-selector implementation.
SELECTOR_MODE_ENV = "REPRO_SELECTOR"

#: Environment variable selecting the simulator execution engine.
ENGINE_MODE_ENV = "REPRO_SIM"

#: Environment variable overriding the default sweep-cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Fallback cache location when neither an argument nor the environment
#: names one.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Environment variable selecting the socket transport encoding.
WIRE_MODE_ENV = "REPRO_WIRE"

#: Valid transport encodings for :func:`wire_mode`.
WIRE_MODES = ("json", "binary")


def env_str(name: str, default: Optional[str] = None) -> Optional[str]:
    """Raw string value of ``$name``; empty values count as unset."""
    return os.environ.get(name) or default


def env_choice(
    name: str,
    valid: Sequence[str],
    default: str,
    explicit: Optional[str] = None,
    what: str = "value",
) -> str:
    """Resolve an enumerated setting.

    ``explicit`` (an API/CLI argument) beats ``$name``, which beats
    ``default``; anything outside ``valid`` raises ``ReproError``.
    """
    resolved = explicit or env_str(name) or default
    if resolved not in valid:
        raise ReproError(
            f"unknown {what} {resolved!r}; valid: {list(valid)}"
        )
    return resolved


def selector_mode(explicit: Optional[str] = None) -> str:
    """The ISE-selector implementation to use
    (``naive`` | ``incremental`` | ``packed``)."""
    from repro.core.selector import SELECTOR_MODES

    return env_choice(
        SELECTOR_MODE_ENV, SELECTOR_MODES, "incremental",
        explicit=explicit, what="selector mode",
    )


def sim_engine_mode(explicit: Optional[str] = None) -> str:
    """The simulator execution engine to use
    (``stepped`` | ``event`` | ``packed``)."""
    from repro.sim.simulator import ENGINE_MODES

    return env_choice(
        ENGINE_MODE_ENV, ENGINE_MODES, "event",
        explicit=explicit, what="simulator engine",
    )


def wire_mode(explicit: Optional[str] = None) -> str:
    """The socket transport encoding to advertise
    (``json`` | ``binary``)."""
    return env_choice(
        WIRE_MODE_ENV, WIRE_MODES, "binary",
        explicit=explicit, what="wire mode",
    )


def cache_dir(explicit: Optional[str] = None) -> str:
    """The sweep cell cache directory: explicit argument, then
    ``$REPRO_CACHE_DIR``, then ``.repro_cache``."""
    if explicit is not None:
        return str(explicit)
    return env_str(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "ENGINE_MODE_ENV",
    "SELECTOR_MODE_ENV",
    "WIRE_MODES",
    "WIRE_MODE_ENV",
    "cache_dir",
    "env_choice",
    "env_str",
    "selector_mode",
    "sim_engine_mode",
    "wire_mode",
]
