"""One-stop run report combining stats, utilisation and churn."""

from __future__ import annotations

from repro.analysis.churn import selection_churn
from repro.analysis.port import port_report
from repro.analysis.utilization import fabric_utilization
from repro.sim.simulator import SimulationResult
from repro.util.tables import render_table


def run_summary(result: SimulationResult) -> str:
    """Render a human-readable report of a (traced) simulation run."""
    stats = result.stats
    rows = [
        ["policy", result.policy_name],
        ["fabric combination (CG,PRC)", result.budget.label],
        ["total cycles", f"{stats.total_cycles:,}"],
        ["kernel executions", f"{stats.total_executions:,}"],
        ["accelerated executions", f"{100 * stats.accelerated_fraction():.1f}%"],
        ["reconfigurations", stats.reconfigurations],
        ["selections", stats.selections],
        ["charged RTS overhead", f"{100 * stats.overhead_fraction():.3f}%"],
    ]
    for mode, count in sorted(stats.executions_by_mode.items()):
        rows.append([f"  mode: {mode}", f"{count:,}"])
    if stats.profit_evaluations:
        rows += [
            ["selector rounds", f"{stats.selector_rounds:,}"],
            ["profit evaluations (logical)", f"{stats.profit_evaluations:,}"],
            ["  recomputed", f"{stats.evaluations_recomputed:,}"],
            ["  cache hits", f"{stats.evaluations_skipped:,}"],
            ["  bound-pruned", f"{stats.evaluations_pruned:,}"],
            ["  cache invalidations", f"{stats.selector_invalidations:,}"],
            ["selector cache hit rate", f"{100 * stats.selector_cache_hit_rate():.1f}%"],
        ]
    parts = [render_table(["metric", "value"], rows, title="Run summary")]
    if result.controller is not None:
        parts.append(fabric_utilization(result).render())
        parts.append(port_report(result).render())
    if result.trace is not None:
        parts.append(selection_churn(result).render())
    return "\n\n".join(parts)


__all__ = ["run_summary"]
