"""Post-simulation analysis tools.

Everything here consumes a :class:`~repro.sim.simulator.SimulationResult`
(run with ``collect_trace=True``) and produces structured views of *what the
run-time system actually did*:

* :mod:`repro.analysis.timeline` -- per-kernel execution timelines in the
  style of the paper's Fig. 5 (which intermediate ISE served which phase of
  a functional block);
* :mod:`repro.analysis.utilization` -- fabric occupancy and bitstream-port
  busy time over the run;
* :mod:`repro.analysis.churn` -- selection-stability metrics: how often
  the selected ISE of a kernel changes between block iterations, and how
  much reconfiguration traffic that causes;
* :mod:`repro.analysis.summary` -- a one-stop human-readable run report.

One subpackage works on the *source tree* instead of simulation results:

* :mod:`repro.analysis.lint` -- the static determinism & invariant linter
  behind ``repro lint`` (imported lazily; see ``docs/analysis.md``).
"""

from repro.analysis.timeline import KernelTimeline, Phase, kernel_timeline
from repro.analysis.utilization import FabricUtilization, fabric_utilization
from repro.analysis.churn import SelectionChurn, selection_churn
from repro.analysis.summary import run_summary
from repro.analysis.compare import KernelDelta, RunComparison, compare_runs
from repro.analysis.port import PortReport, port_report

__all__ = [
    "KernelTimeline",
    "Phase",
    "kernel_timeline",
    "FabricUtilization",
    "fabric_utilization",
    "SelectionChurn",
    "selection_churn",
    "run_summary",
    "KernelDelta",
    "RunComparison",
    "compare_runs",
    "PortReport",
    "port_report",
]
