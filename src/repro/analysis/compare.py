"""Side-by-side comparison of two simulation runs.

Answers "where did the speedup come from?": per kernel, how the cycles and
execution modes shifted between a baseline run and a candidate run (e.g.
RISC vs. mRTS, or mRTS with and without a feature).  Both runs must cover
the same workload (same kernels, same execution counts); the comparator
verifies that before diffing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.simulator import SimulationResult
from repro.util.tables import render_table
from repro.util.validation import ReproError


@dataclass(frozen=True)
class KernelDelta:
    """Per-kernel difference between two runs."""

    kernel: str
    executions: int
    baseline_cycles: int
    candidate_cycles: int
    #: execution-mode mix of the candidate run (mode -> executions)
    candidate_modes: Dict[str, int]

    @property
    def saved_cycles(self) -> int:
        return self.baseline_cycles - self.candidate_cycles

    @property
    def speedup(self) -> float:
        if self.candidate_cycles == 0:
            return 1.0
        return self.baseline_cycles / self.candidate_cycles


@dataclass
class RunComparison:
    baseline_name: str
    candidate_name: str
    deltas: List[KernelDelta]
    baseline_total: int
    candidate_total: int

    @property
    def total_speedup(self) -> float:
        return self.baseline_total / self.candidate_total

    def top_contributors(self, n: int = 3) -> List[KernelDelta]:
        """Kernels contributing the most saved cycles."""
        return sorted(self.deltas, key=lambda d: -d.saved_cycles)[:n]

    def render(self) -> str:
        rows = []
        for delta in sorted(self.deltas, key=lambda d: -d.saved_cycles):
            modes = ", ".join(
                f"{mode}:{count}" for mode, count in sorted(delta.candidate_modes.items())
            )
            rows.append(
                [
                    delta.kernel,
                    delta.executions,
                    delta.baseline_cycles,
                    delta.candidate_cycles,
                    round(delta.speedup, 2),
                    modes,
                ]
            )
        table = render_table(
            ["kernel", "execs", self.baseline_name, self.candidate_name,
             "speedup", "candidate modes"],
            rows,
            title=f"Run comparison: {self.candidate_name} vs {self.baseline_name}",
        )
        return (
            f"{table}\n"
            f"total: {self.baseline_total:,} -> {self.candidate_total:,} cycles "
            f"({self.total_speedup:.2f}x)"
        )


def compare_runs(
    baseline: SimulationResult, candidate: SimulationResult
) -> RunComparison:
    """Diff two traced runs of the same workload."""
    for result, name in ((baseline, "baseline"), (candidate, "candidate")):
        if result.trace is None:
            raise ReproError(f"compare_runs needs a traced {name} run")

    def per_kernel(result: SimulationResult) -> Dict[str, Tuple[int, int, Dict[str, int]]]:
        data: Dict[str, Tuple[int, int, Dict[str, int]]] = {}
        for record in result.trace.executions:
            count, cycles, modes = data.get(record.kernel, (0, 0, {}))
            modes = dict(modes)
            modes[record.mode.value] = modes.get(record.mode.value, 0) + 1
            data[record.kernel] = (count + 1, cycles + record.latency, modes)
        return data

    base = per_kernel(baseline)
    cand = per_kernel(candidate)
    if set(base) != set(cand):
        raise ReproError(
            f"runs cover different kernels: {sorted(set(base) ^ set(cand))}"
        )
    deltas = []
    for kernel in sorted(base):
        b_count, b_cycles, _ = base[kernel]
        c_count, c_cycles, c_modes = cand[kernel]
        if b_count != c_count:
            raise ReproError(
                f"kernel {kernel!r} executed {b_count} vs {c_count} times; "
                "the runs are not the same workload"
            )
        deltas.append(
            KernelDelta(
                kernel=kernel,
                executions=b_count,
                baseline_cycles=b_cycles,
                candidate_cycles=c_cycles,
                candidate_modes=c_modes,
            )
        )
    return RunComparison(
        baseline_name=baseline.policy_name,
        candidate_name=candidate.policy_name,
        deltas=deltas,
        baseline_total=baseline.total_cycles,
        candidate_total=candidate.total_cycles,
    )


__all__ = ["KernelDelta", "RunComparison", "compare_runs"]
