"""Selection-stability metrics.

The run-time system re-selects at every functional-block entry; these
metrics quantify how *stable* the resulting instruction set is: how often a
kernel's serving ISE changes between consecutive iterations of its block,
and how much reconfiguration traffic the changes cause.  A well-tuned
profit function keeps the expensive FG data paths stable (their
reconfiguration takes milliseconds) while shuffling CG contexts freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.fabric.datapath import FabricType
from repro.sim.simulator import SimulationResult
from repro.util.tables import render_table
from repro.util.validation import ReproError


@dataclass
class SelectionChurn:
    """Per-kernel serving-ISE stability over a traced run."""

    #: kernel -> serving ISE name (or None) per block iteration
    servings: Dict[str, List[Optional[str]]]
    #: kernel -> number of iteration-to-iteration changes
    changes: Dict[str, int]
    fg_reconfigurations: int
    cg_reconfigurations: int

    def change_rate(self, kernel: str) -> float:
        """Fraction of iteration transitions where the serving ISE changed."""
        history = self.servings.get(kernel, [])
        if len(history) < 2:
            return 0.0
        return self.changes[kernel] / (len(history) - 1)

    @property
    def total_changes(self) -> int:
        return sum(self.changes.values())

    def render(self) -> str:
        rows = [
            [kernel, len(history), self.changes[kernel], f"{100 * self.change_rate(kernel):.0f}%"]
            for kernel, history in sorted(self.servings.items())
        ]
        table = render_table(
            ["kernel", "iterations", "ISE changes", "change rate"],
            rows,
            title="Selection churn",
        )
        return (
            f"{table}\n"
            f"reconfigurations: {self.fg_reconfigurations} FG (ms-scale), "
            f"{self.cg_reconfigurations} CG (us-scale)"
        )


def selection_churn(result: SimulationResult) -> SelectionChurn:
    """Measure serving-ISE stability from a traced simulation.

    The *serving* ISE of an iteration is the implementation that handled
    the majority of the kernel's executions in that block window (that is
    what the user experiences, regardless of what was nominally selected).
    """
    if result.trace is None:
        raise ReproError("selection_churn needs a run with collect_trace=True")
    trace = result.trace

    servings: Dict[str, List[Optional[str]]] = {}
    kernels = sorted({r.kernel for r in trace.executions})
    for kernel in kernels:
        records = trace.executions_of(kernel)
        block = records[0].block
        history: List[Optional[str]] = []
        for lo, hi in trace.block_windows.get(block, []):
            window = [r for r in records if lo <= r.time <= hi]
            if not window:
                continue
            counts: Dict[Optional[str], int] = {}
            for r in window:
                counts[r.ise_name] = counts.get(r.ise_name, 0) + 1
            history.append(max(counts, key=lambda name: counts[name]))
        servings[kernel] = history

    changes = {
        kernel: sum(1 for a, b in zip(h, h[1:]) if a != b)
        for kernel, h in servings.items()
    }
    fg = cg = 0
    if result.controller is not None:
        for request in result.controller.requests:
            if request.fabric is FabricType.FG:
                fg += 1
            else:
                cg += 1
    return SelectionChurn(
        servings=servings,
        changes=changes,
        fg_reconfigurations=fg,
        cg_reconfigurations=cg,
    )


__all__ = ["SelectionChurn", "selection_churn"]
