"""Frame-protocol conformance: endpoints vs the declared channel table.

:mod:`repro.service.frames` declares, per directed channel, which frame
types each endpoint may put on the wire.  This checker extracts what the
endpoint *implementations* actually do and verifies both directions:

* **sent** -- every dict literal carrying a ``"type"`` key whose value
  resolves to a frame-type constant (directly, or through the registry
  constants the endpoints import).  All such dicts in an endpoint module
  are frames: the endpoints construct frame dicts for the writers and
  nothing else.
* **handled** -- every dispatch comparison on a frame's type: ``frame
  ["type"]`` / ``frame.get("type")`` compared (``==``, ``!=``, ``in``)
  against a constant, including through a local like ``ftype =
  frame.get("type")``.

Per endpoint the checker reports: frame types sent but not declared,
declared but never constructed, incoming (some peer declares them) but
never dispatched on, and dispatched on though no peer sends them.  The
request/response pairings (``cache_get`` -> ``cache_hit | cache_miss``,
...) are validated against the channel table itself, so the registry
cannot drift into declaring an unanswerable request.

Deleting one ``cache_hit`` handler from :class:`ServiceClient` turns
this gate red -- that regression is locked in
``tests/test_analysis_deep.py``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.analysis.lint.core import FileContext, Finding
from repro.service import frames

_FRAMES_MODULE = "repro.service.frames"


def _endpoint_files(
    sources: Mapping[str, str], endpoint: str
) -> List[str]:
    paths = []
    for suffix in frames.ENDPOINT_PATHS[endpoint]:
        for path in sorted(sources):
            if path.endswith(suffix):
                paths.append(path)
                break
    return paths


def _const_value(node: ast.expr, ctx: FileContext) -> Optional[str]:
    """A frame-type string: literal, or a registry constant reference."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    dotted = ctx.dotted_name(node)
    if dotted and dotted.startswith(_FRAMES_MODULE + "."):
        leaf = dotted.rsplit(".", 1)[-1]
        value = getattr(frames, leaf, None)
        if isinstance(value, str):
            return value
    return None


def _is_type_access(node: ast.expr) -> bool:
    """``x.get("type")`` or ``x["type"]``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "type"
    ):
        return True
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.slice, ast.Constant)
        and node.slice.value == "type"
    ):
        return True
    return False


class _EndpointScan:
    """Sent/handled frame types of one endpoint source file."""

    def __init__(self, path: str, source: str, module_name: str, export_map):
        self.path = path
        self.sent: Set[str] = set()
        self.handled: Set[str] = set()
        self.dynamic: List[int] = []  #: lines with unresolvable types
        tree = ast.parse(source)
        ctx = FileContext(
            path,
            source,
            tree,
            export_map=export_map,
            module_name=module_name,
        )
        type_vars: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_type_access(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        type_vars.add(target.id)
        for node in ast.walk(tree):
            if isinstance(node, ast.Dict):
                self._scan_dict(node, ctx)
            elif isinstance(node, ast.Compare):
                self._scan_compare(node, ctx, type_vars)

    def _scan_dict(self, node: ast.Dict, ctx: FileContext) -> None:
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "type"
            ):
                frame_type = _const_value(value, ctx)
                if frame_type is None:
                    self.dynamic.append(node.lineno)
                else:
                    self.sent.add(frame_type)

    def _scan_compare(
        self, node: ast.Compare, ctx: FileContext, type_vars: Set[str]
    ) -> None:
        left = node.left
        is_dispatch = _is_type_access(left) or (
            isinstance(left, ast.Name) and left.id in type_vars
        )
        if not is_dispatch:
            return
        for comparator in node.comparators:
            elements = (
                comparator.elts
                if isinstance(comparator, (ast.Tuple, ast.List, ast.Set))
                else [comparator]
            )
            for element in elements:
                frame_type = _const_value(element, ctx)
                if frame_type is not None:
                    self.handled.add(frame_type)


def _finding(path: str, message: str, line: int = 1) -> Finding:
    return Finding(
        rule="protocol", path=path, line=line, col=0, message=message
    )


def run_conformance(
    sources: Mapping[str, str],
) -> Tuple[List[Finding], Dict[str, object]]:
    """Check every endpoint against the registry; returns findings plus
    the machine-readable protocol table for the JSON gate payload."""
    from repro.analysis.lint.core import build_export_map, module_name_for_path

    export_map = build_export_map(sources)
    known = set(sources)
    findings: List[Finding] = []
    endpoints: Dict[str, Dict[str, object]] = {}

    for endpoint in sorted(frames.ENDPOINT_PATHS):
        paths = _endpoint_files(sources, endpoint)
        if len(paths) < len(frames.ENDPOINT_PATHS[endpoint]):
            missing = [
                suffix
                for suffix in frames.ENDPOINT_PATHS[endpoint]
                if not any(path.endswith(suffix) for path in paths)
            ]
            findings.append(
                _finding(
                    paths[0] if paths else missing[0],
                    f"endpoint {endpoint!r}: source file(s) "
                    f"{missing} not in the analyzed set",
                )
            )
        sent: Set[str] = set()
        handled: Set[str] = set()
        anchor = paths[0] if paths else frames.ENDPOINT_PATHS[endpoint][0]
        for path in paths:
            try:
                scan = _EndpointScan(
                    path,
                    sources[path],
                    module_name_for_path(path, known_paths=known),
                    export_map,
                )
            except SyntaxError as error:
                findings.append(
                    _finding(
                        path,
                        f"endpoint {endpoint!r}: file does not parse: "
                        f"{error.msg}",
                        line=error.lineno or 1,
                    )
                )
                continue
            sent |= scan.sent
            handled |= scan.handled
            for line in scan.dynamic:
                findings.append(
                    _finding(
                        path,
                        f"endpoint {endpoint!r}: frame constructed with a "
                        f"dynamic 'type' the checker cannot resolve",
                        line=line,
                    )
                )

        declared_out = frames.declared_outgoing(endpoint)
        declared_in = frames.declared_incoming(endpoint)
        for frame_type in sorted((sent | handled) - frames.FRAME_TYPES):
            findings.append(
                _finding(
                    anchor,
                    f"endpoint {endpoint!r} uses unknown frame type "
                    f"{frame_type!r} (not in repro.service.frames)",
                )
            )
        for frame_type in sorted(sent - declared_out):
            if frame_type not in frames.FRAME_TYPES:
                continue
            findings.append(
                _finding(
                    anchor,
                    f"endpoint {endpoint!r} sends {frame_type!r} but no "
                    f"channel declares it outgoing",
                )
            )
        for frame_type in sorted(declared_out - sent):
            findings.append(
                _finding(
                    anchor,
                    f"endpoint {endpoint!r} declares {frame_type!r} "
                    f"outgoing but never constructs it",
                )
            )
        for frame_type in sorted(declared_in - handled):
            findings.append(
                _finding(
                    anchor,
                    f"endpoint {endpoint!r} never handles {frame_type!r}, "
                    f"which a peer may send (add a dispatch branch or "
                    f"amend the channel table)",
                )
            )
        for frame_type in sorted(handled - declared_in):
            if frame_type not in frames.FRAME_TYPES:
                continue
            findings.append(
                _finding(
                    anchor,
                    f"endpoint {endpoint!r} dispatches on {frame_type!r} "
                    f"but no peer is declared to send it",
                )
            )
        endpoints[endpoint] = {
            "files": paths,
            "sends": sorted(sent),
            "handles": sorted(handled),
            "declared_outgoing": sorted(declared_out),
            "declared_incoming": sorted(declared_in),
        }

    # Registry self-checks: the pairing table must be realizable on the
    # declared channels.
    senders_of: Dict[str, Set[Tuple[str, str]]] = {}
    for channel in frames.CHANNELS:
        for frame_type in channel.sends:
            senders_of.setdefault(frame_type, set()).add(
                (channel.sender, channel.receiver)
            )
    registry_path = "repro/service/frames.py"
    for request, responses in sorted(frames.PAIRINGS.items()):
        request_channels = senders_of.get(request, set())
        if not request_channels:
            findings.append(
                _finding(
                    registry_path,
                    f"pairing request {request!r} is not declared on any "
                    f"channel",
                )
            )
            continue
        for sender, receiver in sorted(request_channels):
            answered = any(
                (receiver, sender) in senders_of.get(response, set())
                for response in responses
            )
            if not answered:
                findings.append(
                    _finding(
                        registry_path,
                        f"request {request!r} on {sender}->{receiver} has "
                        f"no declared response among {sorted(responses)} "
                        f"on {receiver}->{sender}",
                    )
                )

    table = {
        "channels": [
            {
                "sender": channel.sender,
                "receiver": channel.receiver,
                "sends": sorted(channel.sends),
            }
            for channel in frames.CHANNELS
        ],
        "pairings": {
            request: sorted(responses)
            for request, responses in sorted(frames.PAIRINGS.items())
        },
        "endpoints": endpoints,
    }
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.message))
    return findings, table


__all__ = ["run_conformance"]
