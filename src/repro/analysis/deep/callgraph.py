"""Project-wide call graph over a :class:`~.modgraph.ModuleGraph`.

Nodes are functions and methods, identified as ``module:qualname``
(``repro.service.client:ServiceClient.run_job``).  Edges are calls,
resolved in three tiers of confidence:

* ``direct`` -- the callee's dotted name resolves through the
  import-alias and re-export tables to a known function (plain calls,
  ``module.fn()``, ``ClassName.method()``, constructor calls);
* ``method`` -- ``self.m()`` resolved through the receiver's class, its
  declared bases *and* its known subclasses (an override anywhere in the
  project is a possible callee), plus ``v.m()`` where ``v`` was assigned
  a known class's constructor call in the same function;
* ``may-alias`` -- an attribute call whose receiver cannot be typed
  falls back to *every* known method of that name, except names in
  :data:`COMMON_METHOD_NAMES` (``get``, ``append``, ...) where the
  fallback would connect everything to everything.

Calls inside nested functions belong to the nested function's node;
module-level statements are outside the graph (nothing the deep tier
checks runs at import time).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.deep.modgraph import ModuleGraph

#: Method names too generic for the may-alias fallback: builtin container
#: and IO verbs that would wire unrelated classes together.
COMMON_METHOD_NAMES = frozenset(
    {
        "add", "append", "clear", "close", "copy", "decode", "discard",
        "encode", "extend", "flush", "format", "get", "insert", "items",
        "join", "keys", "pop", "popleft", "put", "read", "remove",
        "render", "set", "setdefault", "sort", "split", "start", "stop",
        "strip", "update", "values", "wait", "write",
    }
)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method node."""

    fid: str                 #: ``module:qualname``
    module: str
    qualname: str
    path: str
    lineno: int
    params: Tuple[str, ...]  #: positional parameter names (incl. ``self``)
    class_name: Optional[str]  #: owning class qualname, or ``None``
    decorators: Tuple[str, ...]

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One class: its methods and resolved base classes."""

    cid: str                 #: ``module:qualname``
    module: str
    qualname: str
    bases: List[str] = field(default_factory=list)      #: resolved cids
    methods: Dict[str, str] = field(default_factory=dict)  #: name -> fid


@dataclass(frozen=True)
class CallEdge:
    """One call site: ``caller`` invokes ``callee`` at ``path:lineno``."""

    caller: str
    callee: str
    kind: str     #: ``direct`` | ``method`` | ``may-alias``
    path: str
    lineno: int


class _Collector(ast.NodeVisitor):
    """First pass over one module: every function/class with qualnames."""

    def __init__(self, graph: "CallGraph", module: str, path: str):
        self.graph = graph
        self.module = module
        self.path = path
        self.stack: List[str] = []
        self.class_stack: List[str] = []

    def _qualname(self, name: str) -> str:
        return ".".join(self.stack + [name])

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qualname(node.name)
        cid = f"{self.module}:{qualname}"
        self.graph.classes[cid] = ClassInfo(cid, self.module, qualname)
        self.graph._class_defs.append((cid, node))
        self.stack.append(node.name)
        self.class_stack.append(qualname)
        self.generic_visit(node)
        self.class_stack.pop()
        self.stack.pop()

    def _visit_function(self, node) -> None:
        qualname = self._qualname(node.name)
        fid = f"{self.module}:{qualname}"
        class_name = self.class_stack[-1] if self.class_stack else None
        # A function nested in a function is not a method of the
        # enclosing class scope.
        if class_name is not None and self.stack and self.stack[-1] != (
            class_name.rsplit(".", 1)[-1]
        ):
            class_name = None
        decorators = []
        ctx = self.graph.modgraph.context(self.module)
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(
                decorator, ast.Call
            ) else decorator
            dotted = ctx.dotted_name(target)
            if dotted:
                decorators.append(dotted)
        params = tuple(
            arg.arg
            for arg in (node.args.posonlyargs + node.args.args)
        )
        info = FunctionInfo(
            fid=fid,
            module=self.module,
            qualname=qualname,
            path=self.path,
            lineno=node.lineno,
            params=params,
            class_name=class_name,
            decorators=tuple(decorators),
        )
        self.graph.functions[fid] = info
        self.graph._function_nodes[fid] = node
        if class_name is not None:
            owner = f"{self.module}:{class_name}"
            self.graph.classes[owner].methods[node.name] = fid
        self.stack.append(node.name)
        saved = self.class_stack
        self.class_stack = []
        self.generic_visit(node)
        self.class_stack = saved
        self.stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


def iter_own_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


class CallGraph:
    """The linked call graph of one :class:`ModuleGraph`."""

    def __init__(self, modgraph: ModuleGraph):
        self.modgraph = modgraph
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: List[CallEdge] = []
        self.edges_from: Dict[str, List[CallEdge]] = {}
        self._function_nodes: Dict[str, ast.AST] = {}
        self._class_defs: List[Tuple[str, ast.AST]] = []
        self._methods_by_name: Dict[str, List[str]] = {}
        self._subclasses: Dict[str, List[str]] = {}
        self._build()

    # ------------------------------------------------------------ building
    def _build(self) -> None:
        for name in sorted(self.modgraph.modules):
            info = self.modgraph.modules[name]
            _Collector(self, name, info.path).visit(info.tree)
        self._link_classes()
        for fid in sorted(self.functions):
            self._collect_edges(fid)

    def _link_classes(self) -> None:
        for cid, node in self._class_defs:
            info = self.classes[cid]
            ctx = self.modgraph.context(info.module)
            for base in node.bases:
                dotted = ctx.dotted_name(base)
                if not dotted:
                    continue
                resolved = self.resolve_in(info.module, dotted)
                if resolved is None:
                    continue
                module, qualname = resolved
                base_cid = f"{module}:{qualname}"
                if base_cid in self.classes:
                    info.bases.append(base_cid)
                    self._subclasses.setdefault(base_cid, []).append(cid)
        for cid in sorted(self.classes):
            for method_name, fid in self.classes[cid].methods.items():
                self._methods_by_name.setdefault(method_name, []).append(fid)

    # ---------------------------------------------------------- resolution
    def resolve_in(
        self, module: str, dotted: str
    ) -> Optional[Tuple[str, str]]:
        """:meth:`ModuleGraph.resolve`, with a fallback for names defined
        in ``module`` itself: a plain ``helper`` or ``ClassName`` carries
        no module prefix, so qualify it with the referencing module."""
        resolved = self.modgraph.resolve(dotted)
        if resolved is not None and resolved[1]:
            return resolved
        local = self.modgraph.resolve(f"{module}.{dotted}")
        return local if local is not None else resolved

    def lookup_method(self, cid: str, name: str) -> Optional[str]:
        """Resolve ``name`` on class ``cid``, walking declared bases."""
        seen: Set[str] = set()
        stack = [cid]
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            fid = self.classes[current].methods.get(name)
            if fid is not None:
                return fid
            stack.extend(self.classes[current].bases)
        return None

    def method_targets(self, cid: str, name: str) -> List[str]:
        """All possible callees of ``receiver.name()`` for a receiver of
        class ``cid``: the MRO resolution plus subclass overrides."""
        targets = []
        primary = self.lookup_method(cid, name)
        if primary is not None:
            targets.append(primary)
        seen = {cid}
        stack = list(self._subclasses.get(cid, ()))
        while stack:
            sub = stack.pop(0)
            if sub in seen:
                continue
            seen.add(sub)
            override = self.classes[sub].methods.get(name)
            if override is not None and override not in targets:
                targets.append(override)
            stack.extend(self._subclasses.get(sub, ()))
        return targets

    def resolve_call(
        self, caller: FunctionInfo, call: ast.Call, local_types: Dict[str, str]
    ) -> List[Tuple[str, str]]:
        """Possible ``(callee fid, kind)`` targets of one call site."""
        ctx = self.modgraph.context(caller.module)
        func = call.func
        dotted = ctx.dotted_name(func)
        if dotted is not None:
            resolved = self.resolve_in(caller.module, dotted)
            if resolved is not None:
                module, qualname = resolved
                fid = f"{module}:{qualname}"
                if fid in self.functions:
                    return [(fid, "direct")]
                cid = fid
                if cid in self.classes:
                    init = self.lookup_method(cid, "__init__")
                    if init is not None:
                        return [(init, "direct")]
                    return []
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                receiver: Optional[str] = None
                if base.id == "self" and caller.class_name is not None:
                    receiver = f"{caller.module}:{caller.class_name}"
                elif base.id in local_types:
                    receiver = local_types[base.id]
                if receiver is not None:
                    targets = self.method_targets(receiver, func.attr)
                    if targets:
                        return [(fid, "method") for fid in targets]
            if func.attr not in COMMON_METHOD_NAMES:
                candidates = self._methods_by_name.get(func.attr, ())
                return [(fid, "may-alias") for fid in sorted(candidates)]
        return []

    def local_constructor_types(self, fid: str) -> Dict[str, str]:
        """Locals assigned ``Name = KnownClass(...)`` in one function."""
        node = self._function_nodes[fid]
        caller = self.functions[fid]
        ctx = self.modgraph.context(caller.module)
        types: Dict[str, str] = {}
        for child in iter_own_nodes(node):
            if not (
                isinstance(child, ast.Assign)
                and len(child.targets) == 1
                and isinstance(child.targets[0], ast.Name)
                and isinstance(child.value, ast.Call)
            ):
                continue
            dotted = ctx.dotted_name(child.value.func)
            if dotted is None:
                continue
            resolved = self.resolve_in(caller.module, dotted)
            if resolved is None:
                continue
            module, qualname = resolved
            cid = f"{module}:{qualname}"
            if cid in self.classes:
                types[child.targets[0].id] = cid
        return types

    def _collect_edges(self, fid: str) -> None:
        caller = self.functions[fid]
        local_types = self.local_constructor_types(fid)
        for child in iter_own_nodes(self._function_nodes[fid]):
            if not isinstance(child, ast.Call):
                continue
            for callee, kind in self.resolve_call(
                caller, child, local_types
            ):
                edge = CallEdge(
                    caller=fid,
                    callee=callee,
                    kind=kind,
                    path=caller.path,
                    lineno=child.lineno,
                )
                self.edges.append(edge)
                self.edges_from.setdefault(fid, []).append(edge)

    def function_node(self, fid: str) -> ast.AST:
        return self._function_nodes[fid]

    # ------------------------------------------------------------- output
    def render_text(self) -> str:
        """The ``--callgraph`` dump: one sorted line per edge."""
        lines = [
            f"{len(self.functions)} functions, {len(self.edges)} edges"
        ]
        for edge in sorted(
            self.edges, key=lambda e: (e.caller, e.lineno, e.callee)
        ):
            lines.append(
                f"{edge.caller} -> {edge.callee} "
                f"[{edge.kind}] at {edge.path}:{edge.lineno}"
            )
        return "\n".join(lines)


__all__ = [
    "COMMON_METHOD_NAMES",
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "iter_own_nodes",
]
