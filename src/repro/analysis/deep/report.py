"""Driver and report for the deep tier (``repro analyze``).

:func:`run_deep` loads the source set (default: the shipped ``repro``
package), builds the module and call graphs once, runs the taint and
conformance engines over them, applies ``# repro-analyze:
disable=<rule>`` suppression comments, and returns a
:class:`DeepReport` whose ``ok`` gates the exit code.  The JSON payload
is shaped like the other gates (``{"gate": "analyze", "ok": ..., ...}``)
so CI tooling treats lint, determinism and analyze uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.deep.callgraph import CallGraph
from repro.analysis.deep.conformance import run_conformance
from repro.analysis.deep.modgraph import ModuleGraph, sources_from_paths
from repro.analysis.deep.taint import analyze_taint
from repro.analysis.lint.core import Finding, default_lint_root

#: Marker introducing an analyze-tier suppression comment.
ANALYZE_SUPPRESS_MARK = "# repro-analyze:"


@dataclass
class DeepReport:
    """Everything one :func:`run_deep` pass produced."""

    findings: List[Finding] = field(default_factory=list)
    protocol: Dict[str, object] = field(default_factory=dict)
    stats: Dict[str, int] = field(default_factory=dict)
    engines: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no *error*-severity finding survived."""
        return not any(f.severity == "error" for f in self.findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def render_text(self) -> str:
        lines = []
        for finding in self.findings:
            lines.append(
                f"{finding.location()}: {finding.severity}"
                f"[{finding.rule}] {finding.message}"
            )
        stats = ", ".join(
            f"{name}={value}" for name, value in sorted(self.stats.items())
        )
        lines.append(
            f"repro analyze: {len(self.errors)} error(s), "
            f"{len(self.findings) - len(self.errors)} warning(s); {stats}"
        )
        return "\n".join(lines)

    def to_payload(self) -> Dict[str, object]:
        return {
            "gate": "analyze",
            "ok": self.ok,
            "engines": list(self.engines),
            "stats": dict(sorted(self.stats.items())),
            "errors": len(self.errors),
            "warnings": len(self.findings) - len(self.errors),
            "protocol": self.protocol,
            "findings": [f.to_payload() for f in self.findings],
        }


def _analyze_suppressed(
    finding: Finding, lines: Sequence[str]
) -> bool:
    """``# repro-analyze: disable=<rule>`` on the finding's line."""
    if not (1 <= finding.line <= len(lines)):
        return False
    text = lines[finding.line - 1]
    index = text.find(ANALYZE_SUPPRESS_MARK)
    if index < 0:
        return False
    spec = text[index + len(ANALYZE_SUPPRESS_MARK):].strip()
    if not spec.startswith("disable="):
        return False
    rules = [
        rule.strip()
        for rule in spec[len("disable="):].split("#")[0].split(",")
    ]
    return finding.rule in rules or "all" in rules


def collect_sources(paths: Optional[Sequence] = None) -> Dict[str, str]:
    """The ``{posix path: source}`` set ``repro analyze`` works on."""
    roots = list(paths) if paths else [default_lint_root()]
    return sources_from_paths(roots)


def run_deep(
    paths: Optional[Sequence] = None,
    sources: Optional[Mapping[str, str]] = None,
    taint: bool = True,
    protocol: bool = True,
    config=None,
) -> DeepReport:
    """Run the deep tier; ``sources`` (tests) bypasses the filesystem."""
    if sources is None:
        sources = collect_sources(paths)
    modgraph = ModuleGraph(sources)
    graph = CallGraph(modgraph)

    report = DeepReport(
        stats={
            "files": len(sources),
            "modules": len(modgraph.modules),
            "functions": len(graph.functions),
            "call_edges": len(graph.edges),
        }
    )
    for path in sorted(modgraph.broken):
        report.findings.append(
            Finding(
                rule="syntax",
                path=path,
                line=1,
                col=0,
                message=(
                    f"file does not parse: {modgraph.broken[path]}"
                ),
            )
        )

    if taint:
        report.engines.append("taint")
        report.findings.extend(analyze_taint(graph, config=config))
    if protocol:
        from repro.service import frames

        # Analyzing a subtree with no protocol endpoint at all (e.g.
        # ``repro analyze src/repro/sim``) is not a conformance failure;
        # a *partially* present endpoint set still is.
        has_endpoint = any(
            path.endswith(suffix)
            for path in sources
            for suffixes in frames.ENDPOINT_PATHS.values()
            for suffix in suffixes
        )
        if has_endpoint:
            report.engines.append("protocol")
            protocol_findings, table = run_conformance(sources)
            report.findings.extend(protocol_findings)
            report.protocol = table

    line_cache: Dict[str, List[str]] = {}
    kept: List[Finding] = []
    for finding in report.findings:
        lines = line_cache.get(finding.path)
        if lines is None:
            lines = sources.get(finding.path, "").splitlines()
            line_cache[finding.path] = lines
        if not _analyze_suppressed(finding, lines):
            kept.append(finding)
    report.findings = kept
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.message))
    return report


def dump_callgraph(
    paths: Optional[Sequence] = None,
    sources: Optional[Mapping[str, str]] = None,
) -> str:
    """The ``--callgraph`` debug dump: every resolved edge, one per line."""
    if sources is None:
        sources = collect_sources(paths)
    return CallGraph(ModuleGraph(sources)).render_text()


__all__ = [
    "ANALYZE_SUPPRESS_MARK",
    "DeepReport",
    "collect_sources",
    "dump_callgraph",
    "run_deep",
]
