"""Module graph: every source file parsed once, named, and linkable.

The deep tier's foundation.  A :class:`ModuleGraph` holds one
:class:`ModuleInfo` per parseable source file, keyed by the dotted module
name inferred from the file's position in its package tree (see
:func:`repro.analysis.lint.core.module_name_for_path`), plus the
project-wide export map that lets alias resolution chase ``from x import
y as z`` chains across modules.  :meth:`ModuleGraph.resolve` splits any
dotted name into its longest module prefix and the remaining qualname --
the primitive the call graph builds edges with.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analysis.lint.core import (
    FileContext,
    build_export_map,
    module_name_for_path,
)


class ModuleInfo:
    """One parsed source file."""

    __slots__ = ("name", "path", "source", "tree", "is_package")

    def __init__(
        self, name: str, path: str, source: str, tree: ast.Module
    ):
        self.name = name
        self.path = path
        self.source = source
        self.tree = tree
        self.is_package = path.endswith("__init__.py")


class ModuleGraph:
    """All modules of one source set, linked by an export map.

    ``sources`` maps posix paths to source text; files that do not parse
    are recorded in :attr:`broken` (path -> message) rather than raised,
    so one syntax error does not hide every other finding -- the report
    layer turns them into findings.
    """

    def __init__(self, sources: Mapping[str, str]):
        self.sources: Dict[str, str] = dict(sources)
        self.export_map = build_export_map(self.sources)
        self.modules: Dict[str, ModuleInfo] = {}
        self.module_of_path: Dict[str, str] = {}
        self.broken: Dict[str, str] = {}
        known = set(self.sources)
        for path in sorted(self.sources):
            try:
                tree = ast.parse(self.sources[path])
            except SyntaxError as error:
                self.broken[path] = f"line {error.lineno}: {error.msg}"
                continue
            name = module_name_for_path(path, known_paths=known)
            self.modules[name] = ModuleInfo(
                name, path, self.sources[path], tree
            )
            self.module_of_path[path] = name
        self._contexts: Dict[str, FileContext] = {}

    def context(self, module_name: str) -> FileContext:
        """The (cached) alias-resolution context of one module."""
        ctx = self._contexts.get(module_name)
        if ctx is None:
            info = self.modules[module_name]
            ctx = FileContext(
                info.path,
                info.source,
                info.tree,
                export_map=self.export_map,
                module_name=module_name,
            )
            self._contexts[module_name] = ctx
        return ctx

    def resolve(self, dotted: str) -> Optional[Tuple[str, str]]:
        """Split ``dotted`` at its longest known-module prefix.

        ``repro.experiments.engine.SweepCell.payload`` becomes
        ``("repro.experiments.engine", "SweepCell.payload")``; names
        with no known module prefix return ``None`` (stdlib, third
        party, or dynamic).
        """
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            head = ".".join(parts[:cut])
            if head in self.modules:
                return head, ".".join(parts[cut:])
        return None


def sources_from_paths(paths) -> Dict[str, str]:
    """Read a ``paths`` list (files or directory trees) into the
    ``{posix path: source}`` mapping every deep-tier entry point takes."""
    from pathlib import Path

    from repro.analysis.lint.core import _python_files
    from repro.util.validation import ReproError

    sources: Dict[str, str] = {}
    for root in paths:
        root = Path(root)
        if not root.exists():
            raise ReproError(f"analyze path does not exist: {root}")
        for file_path in _python_files(root):
            sources[file_path.as_posix()] = file_path.read_text(
                encoding="utf-8"
            )
    return sources


__all__ = ["ModuleGraph", "ModuleInfo", "sources_from_paths"]
