"""Whole-program static analysis (``repro analyze``): the deep tier.

The per-file rules of :mod:`repro.analysis.lint` are the fast tier --
they catch a wall-clock read in the file that makes it.  This package is
the deep tier: it parses the whole shipped tree once, links it into a
module graph and an interprocedural call graph, and runs two engines on
that shared core:

* :mod:`repro.analysis.deep.taint` -- interprocedural nondeterminism
  taint analysis.  Taint is seeded at nondeterminism sources (wall-clock
  calls, unseeded RNG, ``os.environ`` reads, unordered ``set``
  construction and filesystem listings, ``id()``/``hash()`` ordering),
  propagated through assignments, calls and returns, and reported when
  it reaches a determinism sink -- ``payload()``/``to_payload()``
  methods, cache-key fingerprint functions, golden-trace writers,
  ``repro.results`` shard columns, and the ``encode_frame`` /
  ``write_frame`` wire boundaries -- with the full source-to-sink call
  path in every finding.
* :mod:`repro.analysis.deep.conformance` -- the frame-protocol
  conformance checker.  It extracts, per endpoint, the frame types
  actually sent (dict literals carrying a ``"type"`` key) and actually
  handled (dispatch comparisons on ``frame["type"]``), and verifies both
  against the declared channel table in :mod:`repro.service.frames` --
  the single source of truth the runtime dispatch imports too.

:mod:`repro.analysis.deep.modgraph` and
:mod:`repro.analysis.deep.callgraph` hold the shared core;
:mod:`repro.analysis.deep.report` drives both engines and renders the
``{"gate": "analyze", ...}`` payload the CLI and CI consume.  See the
"deep tier" section of ``docs/analysis.md``.
"""

from repro.analysis.deep.callgraph import CallEdge, CallGraph, FunctionInfo
from repro.analysis.deep.conformance import run_conformance
from repro.analysis.deep.modgraph import ModuleGraph
from repro.analysis.deep.report import (
    DeepReport,
    collect_sources,
    dump_callgraph,
    run_deep,
)
from repro.analysis.deep.taint import analyze_taint

__all__ = [
    "CallEdge",
    "CallGraph",
    "DeepReport",
    "FunctionInfo",
    "ModuleGraph",
    "analyze_taint",
    "collect_sources",
    "dump_callgraph",
    "run_conformance",
    "run_deep",
]
