"""Interprocedural nondeterminism taint analysis.

Five taint kinds, each a way a value can differ between two runs of the
same seed:

========== =========================================================
kind       seeded at
========== =========================================================
``wall-clock``      any call in ``WALL_CLOCK_CALLS`` (``time.time``, ...)
``env-read``        ``os.environ`` / ``os.getenv`` outside ``config_env``
``unseeded-random`` stdlib/numpy global-state RNG calls
``unordered``       ``set``/``frozenset`` construction, set literals and
                    comprehensions, unsorted filesystem listings
``id-hash``         ``id()`` and builtin ``hash()`` (PYTHONHASHSEED)
========== =========================================================

The analysis computes one *summary* per function -- which taint kinds
its return value can carry (with a witness call chain back to the
source) and which parameters flow to its return -- by iterating
intra-procedural evaluation over the call graph to a fixpoint.  The
kind/param lattice is finite and summaries only grow, so the fixpoint
terminates; witnesses record the *first* chain that produced each kind
and are never replaced, so chains stay finite under recursion.

Findings fire when taint reaches a determinism sink:

* **sink returns** -- functions whose return value must be
  deterministic: ``payload``/``to_payload``/``engine_payload``/
  ``golden_payload`` methods, cache-key functions (``cell_key``,
  ``_stable_hash``, anything ending in ``fingerprint``);
* **sink calls** -- callees whose arguments must be deterministic:
  the wire boundary (``encode_frame``/``send_frame``/``write_frame``),
  the golden-trace writer (``write_golden``) and the columnar shard
  writer (``ResultWriter.append``).

Sanitizers mirror the determinism reasoning the code base relies on:
``sorted()`` launders ``unordered`` (order is re-established), ``len``/
``bool`` launder everything (a count carries no ordering or clock),
``in``-comparisons launder everything (membership is order-free), and a
subscript *key* launders ``id-hash`` (an ``id()``-keyed memo read does
not leak the id into the value).

The per-path allowlist of :mod:`repro.analysis.lint.config` applies at
the *source*: a wall-clock read in an allowlisted progress-reporting
file seeds no taint at all.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.deep.callgraph import CallGraph, FunctionInfo, iter_own_nodes
from repro.analysis.lint.core import FileContext, Finding
from repro.analysis.lint.rules import WALL_CLOCK_CALLS

#: Taint kind -> lint rule whose per-path allowlist exempts its sources.
KIND_ALLOW_RULE = {
    "wall-clock": "wall-clock",
    "env-read": "env-read",
    "unseeded-random": "unseeded-random",
    "unordered": "unsorted-iteration",
    "id-hash": "id-hash",
}

#: Function names whose *return value* is a determinism sink.
SINK_RETURN_NAMES = frozenset(
    {
        "payload",
        "to_payload",
        "engine_payload",
        "golden_payload",
        "cell_key",
        "_stable_hash",
    }
)

#: Callee qualnames whose *arguments* are a determinism sink.
SINK_CALL_QUALNAMES = frozenset(
    {"encode_frame", "send_frame", "write_frame", "write_golden"}
)

#: Method sinks, matched by ``fid`` suffix (class-qualified).
SINK_CALL_METHOD_SUFFIXES = (":ResultWriter.append",)

#: ``sorted`` re-establishes order; aggregates are order-free.
_DROPS_UNORDERED = frozenset({"sorted", "min", "max", "sum", "any", "all"})
#: A count or truth value carries no nondeterminism of any kind.
_DROPS_ALL = frozenset({"len", "bool"})
#: Receiver-mutating methods: taint of the argument lands in the object.
_MUTATORS = frozenset(
    {"add", "append", "appendleft", "extend", "insert", "setdefault", "update"}
)
#: Unordered filesystem/directory listings, matched by attribute name.
_UNORDERED_ATTR_CALLS = frozenset({"glob", "iterdir", "rglob"})


@dataclass(frozen=True)
class Witness:
    """How one taint kind got somewhere: origin plus the call chain."""

    kind: str
    origin: str              #: ``<desc> at <path>:<line>``
    chain: Tuple[str, ...]   #: function hops, source-first

    def render(self) -> str:
        hops = " -> ".join(
            hop.split(":", 1)[-1].split(" ")[0] for hop in self.chain
        )
        return f"{self.kind} from {self.origin} via {hops}"


@dataclass
class Summary:
    """Converged facts about one function."""

    ret: Dict[str, Witness] = field(default_factory=dict)
    param_ret: Set[int] = field(default_factory=set)


def _merge(
    into: Dict[str, Witness], new: Dict[str, Witness]
) -> bool:
    changed = False
    for kind, witness in new.items():
        if kind not in into:
            into[kind] = witness
            changed = True
    return changed


class _Evaluator:
    """One intra-procedural pass over one function body."""

    def __init__(
        self,
        graph: CallGraph,
        func: FunctionInfo,
        summaries: Dict[str, Summary],
        config,
        collect: bool,
    ):
        self.graph = graph
        self.func = func
        self.summaries = summaries
        self.config = config
        self.collect = collect
        self.ctx: FileContext = graph.modgraph.context(func.module)
        self.env: Dict[str, Dict[str, Witness]] = {}
        self.penv: Dict[str, Set[int]] = {
            name: {index} for index, name in enumerate(func.params)
        }
        self.ret: Dict[str, Witness] = {}
        self.ret_params: Set[int] = set()
        self.findings: List[Finding] = []
        self.local_types = graph.local_constructor_types(func.fid)

    # ------------------------------------------------------------- driving
    def run(self) -> None:
        node = self.graph.function_node(self.func.fid)
        body = getattr(node, "body", [])
        # Two passes approximate loop-carried flows (x built in a loop
        # from a value only tainted later in the body).
        for _ in range(2):
            self._exec_block(body)

    # ---------------------------------------------------------- statements
    def _exec_block(self, stmts) -> None:
        for stmt in stmts:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            state = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, state)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            state = self._eval(stmt.value)
            self._bind(stmt.target, state, augment=True)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                kinds, params = self._eval(stmt.value)
                _merge(self.ret, kinds)
                self.ret_params |= params
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            state = self._eval(stmt.iter)
            self._bind(stmt.target, state)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                state = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, state)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)

    def _bind(self, target: ast.expr, state, augment: bool = False) -> None:
        kinds, params = state
        if isinstance(target, ast.Name):
            if augment:
                _merge(self.env.setdefault(target.id, {}), kinds)
                self.penv.setdefault(target.id, set()).update(params)
            else:
                self.env[target.id] = dict(kinds)
                self.penv[target.id] = set(params)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, state, augment=augment)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, state, augment=augment)
        elif isinstance(target, ast.Attribute):
            # self.x = v: remember the field, and taint the object.
            if isinstance(target.value, ast.Name):
                key = f"{target.value.id}.{target.attr}"
                _merge(self.env.setdefault(key, {}), kinds)
                self.penv.setdefault(key, set()).update(params)
                _merge(self.env.setdefault(target.value.id, {}), kinds)
        elif isinstance(target, ast.Subscript):
            # container[k] = v: container carries v's taint; an id() used
            # as the *key* stays in the key (memo-by-identity pattern).
            key_kinds, key_params = self._eval(target.slice)
            key_kinds = {
                kind: witness
                for kind, witness in key_kinds.items()
                if kind != "id-hash"
            }
            if isinstance(target.value, ast.Name):
                merged = dict(kinds)
                _merge(merged, key_kinds)
                _merge(self.env.setdefault(target.value.id, {}), merged)
                self.penv.setdefault(target.value.id, set()).update(
                    params | key_params
                )

    # --------------------------------------------------------- expressions
    def _eval(self, node: ast.expr) -> Tuple[Dict[str, Witness], Set[int]]:
        method = getattr(
            self, f"_eval_{type(node).__name__.lower()}", None
        )
        if method is not None:
            return method(node)
        # Default: union of child expressions.
        return self._eval_children(node)

    def _eval_children(self, node: ast.AST):
        kinds: Dict[str, Witness] = {}
        params: Set[int] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                child_kinds, child_params = self._eval(child)
                _merge(kinds, child_kinds)
                params |= child_params
            elif isinstance(child, ast.comprehension):
                iter_state = self._eval(child.iter)
                self._bind(child.target, iter_state)
                for condition in child.ifs:
                    self._eval(condition)
        return kinds, params

    def _source(self, kind: str, desc: str, node: ast.AST):
        rule = KIND_ALLOW_RULE[kind]
        if self.config.path_allowed(rule, self.func.path):
            return {}, set()
        origin = f"{desc} at {self.func.path}:{node.lineno}"
        witness = Witness(kind, origin, (self.func.fid,))
        return {kind: witness}, set()

    def _eval_name(self, node: ast.Name):
        kinds = dict(self.env.get(node.id, {}))
        params = set(self.penv.get(node.id, set()))
        dotted = self.ctx.dotted_name(node)
        if dotted == "os.environ":
            source_kinds, _ = self._source("env-read", "os.environ", node)
            _merge(kinds, source_kinds)
        return kinds, params

    def _eval_constant(self, node: ast.Constant):
        return {}, set()

    def _eval_lambda(self, node: ast.Lambda):
        return {}, set()

    def _eval_attribute(self, node: ast.Attribute):
        dotted = self.ctx.dotted_name(node)
        if dotted is not None and dotted.startswith("os.environ"):
            return self._source("env-read", dotted, node)
        kinds: Dict[str, Witness] = {}
        params: Set[int] = set()
        if isinstance(node.value, ast.Name):
            key = f"{node.value.id}.{node.attr}"
            _merge(kinds, self.env.get(key, {}))
            params |= self.penv.get(key, set())
        value_kinds, value_params = self._eval(node.value)
        _merge(kinds, value_kinds)
        return kinds, params | value_params

    def _eval_set(self, node: ast.Set):
        kinds, params = self._eval_children(node)
        source_kinds, _ = self._source("unordered", "set literal", node)
        _merge(kinds, source_kinds)
        return kinds, params

    def _eval_setcomp(self, node: ast.SetComp):
        kinds, params = self._eval_children(node)
        source_kinds, _ = self._source(
            "unordered", "set comprehension", node
        )
        _merge(kinds, source_kinds)
        return kinds, params

    def _eval_compare(self, node: ast.Compare):
        if any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
            # Membership is order-free; evaluate operands for sink
            # side effects only.
            self._eval_children(node)
            return {}, set()
        kinds, params = self._eval_children(node)
        kinds.pop("unordered", None)
        return kinds, params

    def _eval_subscript(self, node: ast.Subscript):
        value_kinds, value_params = self._eval(node.value)
        key_kinds, key_params = self._eval(node.slice)
        key_kinds = {
            kind: witness
            for kind, witness in key_kinds.items()
            if kind != "id-hash"
        }
        _merge(value_kinds, key_kinds)
        return value_kinds, value_params | key_params

    def _eval_call(self, node: ast.Call):
        arg_states = [self._eval(arg) for arg in node.args]
        keyword_states = [
            self._eval(keyword.value) for keyword in node.keywords
        ]
        all_states = arg_states + keyword_states
        dotted = self.ctx.dotted_name(node.func)

        union_kinds: Dict[str, Witness] = {}
        union_params: Set[int] = set()
        for state_kinds, state_params in all_states:
            _merge(union_kinds, state_kinds)
            union_params |= state_params

        # Sanitizing builtins.
        if dotted in _DROPS_ALL:
            return {}, set()
        if dotted in _DROPS_UNORDERED:
            cleaned = dict(union_kinds)
            cleaned.pop("unordered", None)
            return cleaned, union_params

        # Sources.
        source_kind = self._call_source_kind(dotted, node)
        if source_kind is not None:
            source_kinds, _ = self._source(
                source_kind, f"{dotted}()", node
            )
            _merge(source_kinds, union_kinds)
            return source_kinds, union_params

        # Receiver mutation: out.append(x) taints out.
        if (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.attr in _MUTATORS
        ):
            name = node.func.value.id
            _merge(self.env.setdefault(name, {}), union_kinds)
            self.penv.setdefault(name, set()).update(union_params)

        # Interprocedural step: resolved callees contribute their
        # summaries; unresolved calls conservatively pass arguments
        # through.
        targets = [
            (fid, kind)
            for fid, kind in self.graph.resolve_call(
                self.func, node, self.local_types
            )
            if kind in ("direct", "method")
        ]
        if not targets:
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _UNORDERED_ATTR_CALLS
            ):
                source_kinds, _ = self._source(
                    "unordered", f".{node.func.attr}() listing", node
                )
                _merge(source_kinds, union_kinds)
                return source_kinds, union_params
            receiver_kinds, receiver_params = self._eval(node.func)
            _merge(union_kinds, receiver_kinds)
            return union_kinds, union_params | receiver_params

        result_kinds: Dict[str, Witness] = {}
        result_params: Set[int] = set()
        for fid, _edge_kind in targets:
            summary = self.summaries.get(fid)
            callee = self.graph.functions[fid]
            if self.collect:
                self._check_sink_call(fid, callee, node, all_states)
            if summary is None:
                continue
            hop = (
                f"{self.func.fid} "
                f"(call at {self.func.path}:{node.lineno})"
            )
            for kind, witness in summary.ret.items():
                if kind not in result_kinds:
                    result_kinds[kind] = Witness(
                        kind, witness.origin, witness.chain + (hop,)
                    )
            for index in summary.param_ret:
                state = self._argument_state(
                    callee, node, index, arg_states, keyword_states
                )
                if state is None:
                    continue
                passed_kinds, passed_params = state
                for kind, witness in passed_kinds.items():
                    if kind not in result_kinds:
                        result_kinds[kind] = Witness(
                            kind,
                            witness.origin,
                            witness.chain
                            + (f"{fid} (passes through)",),
                        )
                result_params |= passed_params
        return result_kinds, result_params

    def _argument_state(
        self, callee, node: ast.Call, index: int, arg_states, keyword_states
    ):
        """Taint state of the expression bound to callee parameter ``index``."""
        offset = index
        if callee.is_method and isinstance(node.func, ast.Attribute):
            if index == 0:
                # The receiver object itself.
                return self._eval(node.func.value)
            offset = index - 1
        if 0 <= offset < len(arg_states):
            return arg_states[offset]
        if index < len(callee.params):
            wanted = callee.params[index]
            for keyword, state in zip(node.keywords, keyword_states):
                if keyword.arg == wanted:
                    return state
        return None

    def _call_source_kind(
        self, dotted: Optional[str], node: ast.Call
    ) -> Optional[str]:
        if dotted is None:
            return None
        if dotted in WALL_CLOCK_CALLS:
            return "wall-clock"
        if dotted in ("os.getenv", "os.environ.get"):
            return "env-read"
        if dotted.startswith("random."):
            if dotted == "random.Random" and (node.args or node.keywords):
                return None
            return "unseeded-random"
        if dotted.startswith(("numpy.random.", "np.random.")):
            tail = dotted.split("random.", 1)[1]
            if tail in (
                "default_rng", "Generator", "SeedSequence", "RandomState"
            ) and (node.args or node.keywords):
                return None
            return "unseeded-random"
        if dotted in ("set", "frozenset"):
            return "unordered"
        if dotted in (
            "os.listdir", "os.scandir", "glob.glob", "glob.iglob"
        ):
            return "unordered"
        if dotted in ("id", "hash"):
            return "id-hash"
        return None

    # --------------------------------------------------------------- sinks
    def _check_sink_call(
        self, fid: str, callee, node: ast.Call, all_states
    ) -> None:
        is_sink = callee.qualname in SINK_CALL_QUALNAMES or any(
            fid.endswith(suffix) for suffix in SINK_CALL_METHOD_SUFFIXES
        )
        if not is_sink:
            return
        for state_kinds, _params in all_states:
            for kind, witness in sorted(state_kinds.items()):
                self.findings.append(
                    _taint_finding(
                        self.func.path,
                        node.lineno,
                        getattr(node, "col_offset", 0),
                        kind,
                        witness,
                        f"argument of sink {callee.qualname}()",
                    )
                )


def _taint_finding(
    path: str, line: int, col: int, kind: str, witness: Witness, sink: str
) -> Finding:
    return Finding(
        rule="nondet-flow",
        path=path,
        line=line,
        col=col,
        message=(
            f"{kind} value reaches {sink}: {witness.origin}; "
            f"path: {_render_chain(witness)}"
        ),
    )


def _render_chain(witness: Witness) -> str:
    hops = []
    for hop in witness.chain:
        name = hop.split(" ")[0]
        hops.append(name.split(":", 1)[-1])
    return " -> ".join(hops)


def is_sink_return(func: FunctionInfo) -> bool:
    name = func.name
    return name in SINK_RETURN_NAMES or name.endswith("fingerprint")


def analyze_taint(graph: CallGraph, config=None) -> List[Finding]:
    """Run the taint engine over a built call graph; returns findings."""
    from repro.analysis.lint.config import DEFAULT_CONFIG

    cfg = config if config is not None else DEFAULT_CONFIG
    summaries: Dict[str, Summary] = {
        fid: Summary() for fid in graph.functions
    }
    ordered = sorted(graph.functions)

    changed = True
    rounds = 0
    while changed and rounds < 100:
        changed = False
        rounds += 1
        for fid in ordered:
            evaluator = _Evaluator(
                graph, graph.functions[fid], summaries, cfg, collect=False
            )
            evaluator.run()
            summary = summaries[fid]
            if _merge(summary.ret, evaluator.ret):
                changed = True
            new_params = evaluator.ret_params - summary.param_ret
            if new_params:
                summary.param_ret |= new_params
                changed = True

    findings: List[Finding] = []
    for fid in ordered:
        func = graph.functions[fid]
        evaluator = _Evaluator(graph, func, summaries, cfg, collect=True)
        evaluator.run()
        findings.extend(evaluator.findings)
        if is_sink_return(func):
            for kind, witness in sorted(summaries[fid].ret.items()):
                findings.append(
                    _taint_finding(
                        func.path,
                        func.lineno,
                        0,
                        kind,
                        witness,
                        f"return of sink {func.qualname}()",
                    )
                )

    unique: Dict[Tuple[str, int, str, str], Finding] = {}
    for finding in findings:
        key = (finding.path, finding.line, finding.rule, finding.message)
        unique.setdefault(key, finding)
    result = list(unique.values())
    result.sort(key=lambda f: (f.path, f.line, f.col, f.message))
    return result


__all__ = [
    "KIND_ALLOW_RULE",
    "SINK_CALL_QUALNAMES",
    "SINK_RETURN_NAMES",
    "Summary",
    "Witness",
    "analyze_taint",
    "is_sink_return",
]
