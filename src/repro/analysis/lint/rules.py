"""The determinism rules.

Each rule protects one of the repo's byte-identity invariants (serial ==
parallel sweeps, stepped == event engines, naive == incremental selector,
golden traces); ``docs/analysis.md`` documents them one by one with the
failure mode they prevent.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.lint.core import FileContext, Finding, Rule

# --------------------------------------------------------------- wall clock

#: Calls whose return value depends on when (or how fast) the host runs.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    name = "wall-clock"
    summary = "host wall-clock reads outside the allowlisted timing paths"
    rationale = (
        "Simulated time is the only clock: a host-clock value reaching a "
        "payload, trace or cache key makes byte-identical reruns impossible."
    )
    node_types = (ast.Call,)

    def check_node(self, node: ast.Call, ctx: FileContext) -> Iterable[Finding]:
        dotted = ctx.dotted_name(node.func)
        if dotted in WALL_CLOCK_CALLS:
            yield self.finding(
                ctx,
                node,
                f"wall-clock call {dotted}() -- simulated time must come from "
                "the simulator; host timing belongs in the allowlisted "
                "report/runner/bench paths",
            )


# ------------------------------------------------------------------ random

#: numpy.random entry points that are fine *when seeded* (argument given).
_SEEDABLE_NUMPY = frozenset(
    {"default_rng", "Generator", "SeedSequence", "RandomState"}
)


class UnseededRandomRule(Rule):
    name = "unseeded-random"
    summary = "global or unseeded random number generation"
    rationale = (
        "All stochastic inputs flow through repro.util.rng's seeded "
        "Generators so every cell is reproducible from its seed; global-state "
        "or unseeded RNGs silently diverge across processes and reruns."
    )
    node_types = (ast.Call,)

    def check_node(self, node: ast.Call, ctx: FileContext) -> Iterable[Finding]:
        dotted = ctx.dotted_name(node.func)
        if dotted is None:
            return
        if dotted.startswith("random."):
            fn = dotted.split(".", 1)[1]
            if fn == "Random" and (node.args or node.keywords):
                return  # explicit seed
            yield self.finding(
                ctx,
                node,
                f"stdlib {dotted}() uses (or seeds) process-global RNG state; "
                "pass a seeded numpy Generator (repro.util.rng.make_rng)",
            )
        elif dotted.startswith(("numpy.random.", "np.random.")):
            fn = dotted.split("random.", 1)[1]
            if fn in _SEEDABLE_NUMPY:
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        f"{dotted}() without a seed draws OS entropy; pass an "
                        "explicit seed (repro.util.rng.make_rng)",
                    )
            elif "." not in fn:
                yield self.finding(
                    ctx,
                    node,
                    f"{dotted}() uses numpy's global RNG state; use a seeded "
                    "Generator (repro.util.rng.make_rng)",
                )


# -------------------------------------------------------- set-order leakage


def _is_set_expr(node: ast.AST, ctx: FileContext) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.dotted_name(node.func) in ("set", "frozenset")
    return False


class UnsortedIterationRule(Rule):
    name = "unsorted-iteration"
    summary = "direct iteration over a set expression without sorted()"
    rationale = (
        "Set iteration order depends on PYTHONHASHSEED and insertion "
        "history; an unsorted set feeding a loop, list or join can reorder "
        "payloads and traces between runs.  Wrap the expression in "
        "sorted(...) or iterate a list."
    )
    node_types = (ast.For, ast.comprehension, ast.Call)

    _ORDER_SENSITIVE_CALLS = ("list", "tuple", "enumerate")

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if isinstance(node, ast.For):
            if _is_set_expr(node.iter, ctx):
                yield self.finding(
                    ctx, node.iter,
                    "for-loop iterates a set expression in hash order; wrap "
                    "it in sorted(...)",
                )
        elif isinstance(node, ast.comprehension):
            if _is_set_expr(node.iter, ctx):
                yield self.finding(
                    ctx, node.iter,
                    "comprehension iterates a set expression in hash order; "
                    "wrap it in sorted(...)",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            order_sensitive = (
                ctx.dotted_name(func) in self._ORDER_SENSITIVE_CALLS
                or (isinstance(func, ast.Attribute) and func.attr == "join")
            )
            if order_sensitive:
                for arg in node.args:
                    if _is_set_expr(arg, ctx):
                        yield self.finding(
                            ctx, arg,
                            "set expression materialised in hash order; wrap "
                            "it in sorted(...)",
                        )


# ---------------------------------------------------------- float equality

_INF_STRINGS = frozenset({"inf", "-inf", "+inf", "infinity", "-infinity"})


def _is_inf_sentinel(node: ast.AST, ctx: FileContext) -> bool:
    """``float("inf")`` / ``math.inf`` sentinels compare exactly (IEEE 754
    infinities are unique values, not rounding results); they are exempt."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return node.args[0].value.strip().lower() in _INF_STRINGS
    return ctx.dotted_name(node) in ("math.inf", "numpy.inf", "np.inf")


def _float_params(fn: ast.AST) -> Set[str]:
    names: Set[str] = set()
    args = fn.args
    for arg in [
        *getattr(args, "posonlyargs", []),
        *args.args,
        *args.kwonlyargs,
    ]:
        annotation = arg.annotation
        if isinstance(annotation, ast.Name) and annotation.id == "float":
            names.add(arg.arg)
        elif (
            isinstance(annotation, ast.Constant)
            and annotation.value == "float"
        ):
            names.add(arg.arg)
    return names


class FloatEqualityRule(Rule):
    name = "float-equality"
    summary = "== / != on float values in equation or profit code"
    rationale = (
        "Exact float comparison is only sound when both sides come from the "
        "same deterministic computation; anywhere else it makes profit "
        "tie-breaks and equation checks depend on rounding.  Use "
        "math.isclose, an ordering comparison, or document the exactness "
        "contract and suppress."
    )
    node_types = (ast.Compare,)

    def begin_module(self, ctx: FileContext) -> Iterable[Finding]:
        # Comparisons of float-annotated parameters, attributed to their
        # innermost enclosing function so nested defs scope correctly.
        findings: List[Finding] = []

        def visit(node: ast.AST, params: Set[str]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = _float_params(node)
            elif isinstance(node, ast.Compare):
                findings.extend(self._check_params(node, params, ctx))
            for child in ast.iter_child_nodes(node):
                visit(child, params)

        visit(ctx.tree, set())
        return findings

    def _check_params(
        self, node: ast.Compare, params: Set[str], ctx: FileContext
    ) -> Iterable[Finding]:
        if not params:
            return
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (operands[index], operands[index + 1])
            if any(_is_inf_sentinel(side, ctx) for side in pair):
                continue
            for side in pair:
                if isinstance(side, ast.Name) and side.id in params:
                    yield self.finding(
                        ctx,
                        node,
                        f"exact ==/!= on float parameter {side.id!r}; use "
                        "math.isclose, an ordering comparison, or document "
                        "the exactness contract and suppress",
                    )
                    break

    def check_node(self, node: ast.Compare, ctx: FileContext) -> Iterable[Finding]:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (operands[index], operands[index + 1]):
                if _is_inf_sentinel(side, ctx):
                    continue
                is_float_literal = (
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, float)
                )
                is_float_call = (
                    isinstance(side, ast.Call)
                    and ctx.dotted_name(side.func) == "float"
                )
                if is_float_literal or is_float_call:
                    yield self.finding(
                        ctx,
                        node,
                        "exact ==/!= against a float value; use math.isclose, "
                        "an ordering comparison, or document the exactness "
                        "contract and suppress",
                    )
                    break


# --------------------------------------------------------- mutable defaults

_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.deque",
    }
)


class MutableDefaultRule(Rule):
    name = "mutable-default"
    summary = "mutable default argument values"
    rationale = (
        "A mutable default is shared across calls: state from one "
        "simulation leaks into the next, so two runs of the same cell stop "
        "being independent."
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp,
                 ast.DictComp),
            ) or (
                isinstance(default, ast.Call)
                and ctx.dotted_name(default.func) in _MUTABLE_CONSTRUCTORS
            )
            if mutable:
                label = getattr(node, "name", "<lambda>")
                yield self.finding(
                    ctx,
                    default,
                    f"mutable default argument in {label}(); use None and "
                    "create the value inside the function",
                )


# ----------------------------------------------------------- environ reads

_ENV_NAMES = frozenset(
    {"os.environ", "os.getenv", "os.putenv", "os.unsetenv", "os.environb"}
)


class EnvReadRule(Rule):
    name = "env-read"
    summary = "os.environ access outside repro.config_env"
    rationale = (
        "Ambient shell state must enter through the typed accessors in "
        "repro.config_env, where precedence and validation live; ad-hoc "
        "reads make two 'identical' runs diverge invisibly and never reach "
        "cache keys."
    )
    node_types = (ast.Attribute, ast.Name)

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if isinstance(node, ast.Attribute):
            if ctx.dotted_name(node) in _ENV_NAMES:
                yield self.finding(
                    ctx,
                    node,
                    f"direct {ctx.dotted_name(node)} access; add a typed "
                    "accessor to repro.config_env instead",
                )
        elif isinstance(node, ast.Name):
            resolved = ctx.aliases.get(node.id)
            if resolved in _ENV_NAMES and not isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"direct {resolved} access (imported as {node.id!r}); "
                    "add a typed accessor to repro.config_env instead",
                )


# ------------------------------------------------- blocking calls in async

#: Calls that park the whole event loop when awaited code runs them.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "open",
        "io.open",
        "os.fdopen",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
    }
)


class BlockingCallInAsyncRule(Rule):
    name = "blocking-call-in-async"
    summary = "blocking sleep/socket/file calls inside async def bodies"
    rationale = (
        "The sweep service daemon multiplexes every client and worker on "
        "one event loop; a single time.sleep, blocking socket call or "
        "synchronous open() inside an async def stalls all of them at "
        "once.  Use asyncio.sleep, the stream APIs, or push the work into "
        "asyncio.to_thread."
    )
    node_types = (ast.AsyncFunctionDef,)

    def check_node(
        self, node: ast.AsyncFunctionDef, ctx: FileContext
    ) -> Iterable[Finding]:
        # Walk the coroutine body but stop at nested function boundaries:
        # a sync helper *defined* inside an async def runs wherever it is
        # called from, which may legitimately be a worker thread.
        stack: List[ast.AST] = list(ast.iter_child_nodes(node))
        while stack:
            child = stack.pop()
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(child, ast.Call):
                dotted = ctx.dotted_name(child.func)
                if dotted is not None and (
                    dotted in _BLOCKING_CALLS
                    or dotted.startswith("socket.socket")
                ):
                    yield self.finding(
                        ctx,
                        child,
                        f"blocking {dotted}() inside async def "
                        f"{node.name}() parks the whole event loop; use "
                        "the asyncio equivalent or asyncio.to_thread",
                    )
            stack.extend(ast.iter_child_nodes(child))


def default_rules() -> List[Rule]:
    """Fresh instances of every shipped determinism rule."""
    return [
        WallClockRule(),
        UnseededRandomRule(),
        UnsortedIterationRule(),
        FloatEqualityRule(),
        MutableDefaultRule(),
        EnvReadRule(),
        BlockingCallInAsyncRule(),
    ]


__all__ = [
    "BlockingCallInAsyncRule",
    "EnvReadRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "UnseededRandomRule",
    "UnsortedIterationRule",
    "WallClockRule",
    "WALL_CLOCK_CALLS",
    "default_rules",
]
