"""Project-level invariant checkers (the contract half of the linter).

Unlike the single-file determinism rules, these cross-check *pairs* of
declarations that must stay in lockstep for the repo's A/B identities to
hold:

* ``dual-impl-signature`` -- the naive, incremental and packed selector
  cores, and the stepped, event and packed simulator engines, must keep
  identical call signatures (one drifting silently breaks
  ``REPRO_SELECTOR`` / ``REPRO_SIM`` interchangeability), and the
  dual-entry methods (``RuntimePolicy.execute`` / ``execute_run``) must
  both exist;
* ``golden-payload-exclusion`` -- every key emitted by
  ``SimulationStats.selector_payload`` / ``engine_payload`` (how the
  *reproduction* computed the run) must stay out of ``to_payload`` (what
  the *modelled hardware* did), or golden traces start depending on the
  implementation choice;
* ``cache-key-fields`` -- every declared ``SweepCell`` override field must
  flow into the cache key: referenced by ``SweepCell.payload`` and carried
  into the ``library_fingerprint`` call inside ``cell_key``;
* ``backend-run-signature`` -- every registered executor backend's
  ``run()`` must keep the serial backend's arguments as a prefix, so the
  engine can route any grid through any backend unchanged;
* ``engine-stats-exclusion`` -- every key of
  ``EngineStats.engine_payload`` (how the *sweep* was executed) must stay
  out of ``SimulationStats.to_payload`` (what the modelled hardware did),
  or golden traces start depending on the executor backend;
* ``results-schema-coverage`` -- every field that ``SweepCell.payload``
  can emit must appear in the columnar store's ``CELL_FIELDS`` schema
  tuple, or ``ResultWriter`` starts rejecting (or silently dropping)
  cell coordinates that the engine actually produces.

Each checker targets a file by trailing path (e.g. ``sim/stats.py``), so
the same pass works on the shipped tree and on synthetic fixtures in
tests.  A checker that cannot find its anchors reports that as a finding
-- a contract that silently stops being checked is itself a regression.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.core import INVARIANT_RULE_NAMES, FileContext, Finding

#: (file suffix, scope class or None, implementation A, implementation B,
#: mode).  ``exact`` pairs are drop-in interchangeable and must match
#: argument-for-argument; in ``extends`` pairs B is the batched form of A
#: and must keep A's arguments as a prefix (so every call site of A can be
#: routed through B).
DUAL_IMPLEMENTATIONS: Tuple[Tuple[str, Optional[str], str, str, str], ...] = (
    ("core/selector.py", "ISESelector", "_select_naive", "_select_incremental",
     "exact"),
    ("core/selector.py", "ISESelector", "_select_incremental",
     "_select_packed", "exact"),
    ("sim/simulator.py", "Simulator", "_run_kernels_stepped",
     "_run_kernels_event", "exact"),
    ("sim/simulator.py", "Simulator", "_run_kernels_event",
     "_run_kernels_packed", "exact"),
    ("sim/policy.py", "RuntimePolicy", "execute", "execute_run", "extends"),
)

#: Methods of SimulationStats whose dict keys must avoid to_payload's.
PAYLOAD_EXCLUSIONS: Tuple[str, ...] = ("selector_payload", "engine_payload")

#: SweepCell fields that must reach both payload() and the fingerprint.
FINGERPRINT_FIELDS: Tuple[str, ...] = (
    "workload",
    "budget",
    "workload_params",
    "budget_params",
)


def _module_for(
    sources: Dict[str, str], suffix: str
) -> Optional[FileContext]:
    for path in sorted(sources):
        if path.replace("\\", "/").endswith(suffix):
            try:
                tree = ast.parse(sources[path])
            except SyntaxError:
                return None
            return FileContext(path, sources[path], tree)
    return None


def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _find_function(scope: ast.AST, name: str) -> Optional[ast.FunctionDef]:
    for node in ast.iter_child_nodes(scope):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node
    return None


def _signature_of(fn: ast.FunctionDef) -> Tuple:
    """The comparable shape of a function: ordered argument names per kind
    (annotations and defaults excluded -- names and arity are the contract)."""
    args = fn.args
    return (
        tuple(a.arg for a in getattr(args, "posonlyargs", [])),
        tuple(a.arg for a in args.args),
        args.vararg.arg if args.vararg else None,
        tuple(a.arg for a in args.kwonlyargs),
        args.kwarg.arg if args.kwarg else None,
    )


def _finding(
    rule: str, ctx: Optional[FileContext], node: Optional[ast.AST],
    message: str, fallback_path: str = "<project>",
) -> Finding:
    return Finding(
        rule=rule,
        path=ctx.path if ctx is not None else fallback_path,
        line=getattr(node, "lineno", 1) if node is not None else 1,
        col=getattr(node, "col_offset", 0) if node is not None else 0,
        message=message,
    )


# ------------------------------------------------------ dual signatures


def _extends(sig_a: Tuple, sig_b: Tuple) -> bool:
    """True when B keeps A's positional arguments as a prefix."""
    args_a = [*sig_a[0], *sig_a[1]]
    args_b = [*sig_b[0], *sig_b[1]]
    return args_b[: len(args_a)] == args_a


def check_dual_signatures(sources: Dict[str, str]) -> Iterable[Finding]:
    rule = "dual-impl-signature"
    for suffix, class_name, impl_a, impl_b, mode in DUAL_IMPLEMENTATIONS:
        ctx = _module_for(sources, suffix)
        if ctx is None:
            continue  # file not part of this lint scope
        scope: ast.AST = ctx.tree
        if class_name is not None:
            scope = _find_class(ctx.tree, class_name)
            if scope is None:
                yield _finding(
                    rule, ctx, None,
                    f"class {class_name} not found; the "
                    f"{impl_a}/{impl_b} signature contract cannot be checked",
                )
                continue
        fn_a = _find_function(scope, impl_a)
        fn_b = _find_function(scope, impl_b)
        if fn_a is None or fn_b is None:
            missing = impl_a if fn_a is None else impl_b
            yield _finding(
                rule, ctx, scope if isinstance(scope, ast.AST) else None,
                f"dual implementation {missing}() is missing from "
                f"{class_name or ctx.path}; the A/B pair must keep both",
            )
            continue
        sig_a, sig_b = _signature_of(fn_a), _signature_of(fn_b)
        if mode == "exact":
            compatible = sig_a == sig_b
            requirement = "interchangeable implementations must share one signature"
        else:
            compatible = _extends(sig_a, sig_b)
            requirement = (
                f"the batched form must keep {impl_a}'s arguments as a prefix"
            )
        if not compatible:
            yield _finding(
                rule, ctx, fn_b,
                f"{impl_a}{_render(sig_a)} and "
                f"{impl_b}{_render(sig_b)} have drifted apart; {requirement}",
            )


def _render(signature: Tuple) -> str:
    posonly, args, vararg, kwonly, kwarg = signature
    parts = [*posonly, *args]
    if vararg:
        parts.append(f"*{vararg}")
    elif kwonly:
        parts.append("*")
    parts.extend(kwonly)
    if kwarg:
        parts.append(f"**{kwarg}")
    return "(" + ", ".join(parts) + ")"


# ------------------------------------------------- golden payload exclusion


def _dict_keys_returned(fn: ast.FunctionDef) -> Set[str]:
    keys: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
    return keys


def check_payload_exclusion(sources: Dict[str, str]) -> Iterable[Finding]:
    rule = "golden-payload-exclusion"
    ctx = _module_for(sources, "sim/stats.py")
    if ctx is None:
        return
    stats_class = _find_class(ctx.tree, "SimulationStats")
    if stats_class is None:
        yield _finding(
            rule, ctx, None,
            "class SimulationStats not found; golden-payload key exclusion "
            "cannot be checked",
        )
        return
    to_payload = _find_function(stats_class, "to_payload")
    if to_payload is None:
        yield _finding(
            rule, ctx, stats_class,
            "SimulationStats.to_payload missing; golden snapshots have no "
            "stats payload to protect",
        )
        return
    golden_keys = _dict_keys_returned(to_payload)
    for method_name in PAYLOAD_EXCLUSIONS:
        method = _find_function(stats_class, method_name)
        if method is None:
            yield _finding(
                rule, ctx, stats_class,
                f"SimulationStats.{method_name} missing; the "
                "implementation-observability counters must stay in their "
                "own payload",
            )
            continue
        overlap = sorted(_dict_keys_returned(method) & golden_keys)
        if overlap:
            yield _finding(
                rule, ctx, method,
                f"{method_name} keys {overlap} also appear in to_payload; "
                "implementation counters must never enter golden payloads",
            )


# --------------------------------------------------- backend run signatures


def check_backend_run_signatures(sources: Dict[str, str]) -> Iterable[Finding]:
    rule = "backend-run-signature"
    backend_paths = sorted(
        path for path in sources
        if "experiments/backends/" in path.replace("\\", "/")
        and path.replace("\\", "/").endswith(".py")
    )
    if not backend_paths:
        return  # backends not part of this lint scope
    serial_ctx = _module_for(sources, "experiments/backends/serial.py")
    serial_run = None
    if serial_ctx is not None:
        serial_class = _find_class(serial_ctx.tree, "SerialBackend")
        if serial_class is not None:
            serial_run = _find_function(serial_class, "run")
    if serial_run is None:
        yield _finding(
            rule, serial_ctx, None,
            "SerialBackend.run not found; the backend run() signature "
            "contract has no reference to check against",
            fallback_path=backend_paths[0],
        )
        return
    reference = _signature_of(serial_run)
    for path in backend_paths:
        try:
            tree = ast.parse(sources[path])
        except SyntaxError:
            continue  # the determinism rules already report unparsable files
        ctx = FileContext(path, sources[path], tree)
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.ClassDef)
                and node.name.endswith("Backend")
            ):
                continue
            run_fn = _find_function(node, "run")
            if run_fn is None:
                continue  # abstract carriers without run() are fine
            signature = _signature_of(run_fn)
            if not _extends(reference, signature):
                yield _finding(
                    rule, ctx, run_fn,
                    f"{node.name}.run{_render(signature)} does not keep "
                    f"SerialBackend.run{_render(reference)}'s arguments as "
                    "a prefix; the engine must be able to route any grid "
                    "through any registered backend",
                )


# ----------------------------------------------------- engine stats exclusion


def check_engine_stats_exclusion(sources: Dict[str, str]) -> Iterable[Finding]:
    rule = "engine-stats-exclusion"
    engine_ctx = _module_for(sources, "experiments/engine.py")
    stats_ctx = _module_for(sources, "sim/stats.py")
    if engine_ctx is None or stats_ctx is None:
        return  # the pair is only checkable with both halves in scope
    stats_class = _find_class(stats_ctx.tree, "SimulationStats")
    to_payload = (
        _find_function(stats_class, "to_payload")
        if stats_class is not None else None
    )
    if to_payload is None:
        return  # golden-payload-exclusion already reports the broken anchor
    golden_keys = _dict_keys_returned(to_payload)
    engine_stats = _find_class(engine_ctx.tree, "EngineStats")
    if engine_stats is None:
        yield _finding(
            rule, engine_ctx, None,
            "class EngineStats not found; the engine counters have no "
            "payload to keep out of golden records",
        )
        return
    engine_payload = _find_function(engine_stats, "engine_payload")
    if engine_payload is None:
        yield _finding(
            rule, engine_ctx, engine_stats,
            "EngineStats.engine_payload missing; the sweep-executor "
            "counters must stay in their own payload",
        )
        return
    overlap = sorted(_dict_keys_returned(engine_payload) & golden_keys)
    if overlap:
        yield _finding(
            rule, engine_ctx, engine_payload,
            f"EngineStats.engine_payload keys {overlap} also appear in "
            "SimulationStats.to_payload; executor observability must never "
            "enter golden payloads",
        )


# ------------------------------------------------------ cache key coverage


def _dataclass_fields(cls: ast.ClassDef) -> List[str]:
    fields = []
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            fields.append(node.target.id)
    return fields


def _self_attrs(fn: ast.FunctionDef, receiver: str) -> Set[str]:
    attrs: Set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == receiver
        ):
            attrs.add(node.attr)
    return attrs


def check_cache_key_fields(sources: Dict[str, str]) -> Iterable[Finding]:
    rule = "cache-key-fields"
    ctx = _module_for(sources, "experiments/engine.py")
    if ctx is None:
        return
    cell_class = _find_class(ctx.tree, "SweepCell")
    if cell_class is None:
        yield _finding(
            rule, ctx, None,
            "class SweepCell not found; cache-key field coverage cannot be "
            "checked",
        )
        return
    fields = _dataclass_fields(cell_class)
    payload_fn = _find_function(cell_class, "payload")
    if payload_fn is None:
        yield _finding(
            rule, ctx, cell_class,
            "SweepCell.payload missing; cells cannot be content-addressed",
        )
    else:
        referenced = _self_attrs(payload_fn, "self")
        for name in fields:
            if name not in referenced:
                yield _finding(
                    rule, ctx, payload_fn,
                    f"SweepCell field {name!r} never reaches payload(); a "
                    "declared override that stays out of the cache key "
                    "serves stale records",
                )
    cell_key_fn = _find_function(ctx.tree, "cell_key")
    if cell_key_fn is None:
        yield _finding(
            rule, ctx, None,
            "cell_key() not found in experiments/engine.py; cells cannot be "
            "content-addressed",
        )
        return
    fingerprint_attrs: Set[str] = set()
    for node in ast.walk(cell_key_fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "library_fingerprint"
        ):
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                if (
                    isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                ):
                    fingerprint_attrs.add(arg.attr)
    missing = [f for f in FINGERPRINT_FIELDS if f not in fingerprint_attrs]
    if missing:
        yield _finding(
            rule, ctx, cell_key_fn,
            f"cell_key()'s library_fingerprint call omits {missing}; the "
            "fingerprint must see every field that changes the library",
        )


# --------------------------------------------------- results schema coverage


def _payload_keys(fn: ast.FunctionDef) -> Set[str]:
    """Every constant string key ``payload()`` can emit.

    Covers both construction forms the method uses: string keys of dict
    literals, and ``<name>["key"] = ...`` subscript assignments (the
    conditional fields added after the literal).
    """
    keys: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
    return keys


def _module_tuple(tree: ast.Module, name: str) -> Optional[Set[str]]:
    """String elements of a module-level ``NAME = ("a", "b", ...)`` assign."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                if isinstance(value, (ast.Tuple, ast.List)):
                    elements = set()
                    for element in value.elts:
                        if (
                            isinstance(element, ast.Constant)
                            and isinstance(element.value, str)
                        ):
                            elements.add(element.value)
                    return elements
                return None
    return None


def check_results_schema_coverage(
    sources: Dict[str, str],
) -> Iterable[Finding]:
    rule = "results-schema-coverage"
    engine_ctx = _module_for(sources, "experiments/engine.py")
    schema_ctx = _module_for(sources, "results/schema.py")
    if engine_ctx is None or schema_ctx is None:
        return  # the pair is only checkable with both halves in scope
    cell_class = _find_class(engine_ctx.tree, "SweepCell")
    payload_fn = (
        _find_function(cell_class, "payload")
        if cell_class is not None else None
    )
    if payload_fn is None:
        return  # cache-key-fields already reports the broken anchor
    schema_fields = _module_tuple(schema_ctx.tree, "CELL_FIELDS")
    if schema_fields is None:
        yield _finding(
            rule, schema_ctx, None,
            "CELL_FIELDS tuple of string constants not found in "
            "results/schema.py; the columnar cell schema has no declared "
            "column set to check payload() against",
        )
        return
    uncovered = sorted(_payload_keys(payload_fn) - schema_fields)
    if uncovered:
        yield _finding(
            rule, schema_ctx, None,
            f"SweepCell.payload can emit {uncovered} but CELL_FIELDS does "
            "not list them; ResultWriter would reject cells the engine "
            "actually produces",
        )


# ------------------------------------------------------------------ driver

_CHECKERS = (
    check_dual_signatures,
    check_payload_exclusion,
    check_cache_key_fields,
    check_backend_run_signatures,
    check_engine_stats_exclusion,
    check_results_schema_coverage,
)

INVARIANT_RULE_NAMES[:] = [
    "dual-impl-signature",
    "golden-payload-exclusion",
    "cache-key-fields",
    "backend-run-signature",
    "engine-stats-exclusion",
    "results-schema-coverage",
]


def run_invariants(sources: Dict[str, str], config=None) -> List[Finding]:
    """Run every invariant checker over ``sources`` (path -> source text).

    Checkers whose anchor files are outside the lint scope are skipped --
    linting a fixture directory must not fail for lacking ``sim/stats.py``.
    """
    from repro.analysis.lint.config import DEFAULT_CONFIG

    cfg = config if config is not None else DEFAULT_CONFIG
    findings: List[Finding] = []
    for checker in _CHECKERS:
        for finding in checker(sources):
            if cfg.path_allowed(finding.rule, finding.path):
                continue
            severity = cfg.severity_of(finding.rule)
            if severity != finding.severity:
                finding = Finding(
                    rule=finding.rule,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    message=finding.message,
                    severity=severity,
                )
            findings.append(finding)
    return findings


__all__ = [
    "DUAL_IMPLEMENTATIONS",
    "FINGERPRINT_FIELDS",
    "PAYLOAD_EXCLUSIONS",
    "check_backend_run_signatures",
    "check_cache_key_fields",
    "check_dual_signatures",
    "check_engine_stats_exclusion",
    "check_payload_exclusion",
    "check_results_schema_coverage",
    "run_invariants",
]
