"""Visitor core of the determinism & invariant linter.

The framework is deliberately small:

* a :class:`Rule` inspects AST nodes of the types it declares interest in
  (``node_types``) and yields :class:`Finding`\\ s; ``begin_module`` lets it
  reset per-file state;
* :class:`FileContext` gives rules the parsed module, the raw source lines,
  and a resolved import-alias table, so a rule can ask "what dotted name
  does this call really target?" without re-deriving imports itself;
* :func:`lint_source` runs every rule in **one** AST walk per file and
  applies suppression comments and the per-path allowlist from
  :mod:`repro.analysis.lint.config`;
* :func:`run_lint` maps that over a file tree and finishes with the
  project-level invariant checkers
  (:mod:`repro.analysis.lint.invariants`), returning a :class:`LintReport`
  whose ``ok`` gates CI.

Suppression syntax (checked against the finding's physical line, or
anywhere in the file for the ``disable-file`` form)::

    risky_call()  # repro-lint: disable=wall-clock
    # repro-lint: disable-file=float-equality
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.util.validation import ReproError

#: Marker introducing a suppression comment.
SUPPRESS_MARK = "# repro-lint:"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str           #: posix-style path as given to the linter
    line: int           #: 1-based line of the offending node
    col: int            #: 0-based column
    message: str
    severity: str = "error"   #: ``error`` gates the exit code; ``warning`` does not

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_payload(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }


class FileContext:
    """Per-file state shared by every rule during one walk.

    ``aliases`` maps local names to the dotted origin they were imported
    as: ``import numpy as np`` yields ``{"np": "numpy"}``, ``from time
    import perf_counter as pc`` yields ``{"pc": "time.perf_counter"}``.
    """

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.tree = tree
        self.lines = source.splitlines()
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """The fully resolved dotted name of a ``Name``/``Attribute`` chain,
        or ``None`` for anything dynamic (subscripts, calls, ...)."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class of all single-file lint rules."""

    #: Unique kebab-case identifier (used in suppressions and config).
    name: str = ""
    #: One-line description of what the rule flags.
    summary: str = ""
    #: Which determinism invariant the rule protects (docs / --list-rules).
    rationale: str = ""
    #: AST node classes the rule wants to see; empty means module-only.
    node_types: Tuple[type, ...] = ()

    def begin_module(self, ctx: FileContext) -> Iterable[Finding]:
        """Called once per file before the walk; may yield findings."""
        return ()

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        """Called for every node whose type is in ``node_types``."""
        return ()

    # ------------------------------------------------------------ helpers
    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _suppressed(finding: Finding, ctx: FileContext) -> bool:
    """True when a suppression comment disables ``finding``."""
    def _rules_of(text: str, directive: str) -> List[str]:
        mark = SUPPRESS_MARK + " " + directive + "="
        index = text.find(mark)
        if index < 0:
            # tolerate no space after the colon
            mark = SUPPRESS_MARK + directive + "="
            index = text.find(mark)
            if index < 0:
                return []
        spec = text[index + len(mark):].split("#")[0]
        return [rule.strip() for rule in spec.split(",") if rule.strip()]

    line = ctx.line_text(finding.line)
    if finding.rule in _rules_of(line, "disable") or "all" in _rules_of(
        line, "disable"
    ):
        return True
    for text in ctx.lines:
        if SUPPRESS_MARK in text:
            rules = _rules_of(text, "disable-file")
            if finding.rule in rules or "all" in rules:
                return True
    return False


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    config=None,
) -> List[Finding]:
    """Lint one module's source text; returns surviving findings.

    Findings are dropped when a suppression comment disables them or the
    config's per-path allowlist exempts the file from the rule, and
    re-labelled with the config's severity for the rule otherwise.
    """
    from repro.analysis.lint.config import DEFAULT_CONFIG
    from repro.analysis.lint.rules import default_rules

    cfg = config if config is not None else DEFAULT_CONFIG
    active = list(rules) if rules is not None else default_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Finding(
                rule="syntax",
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                message=f"file does not parse: {error.msg}",
            )
        ]
    ctx = FileContext(path, source, tree)

    raw: List[Finding] = []
    dispatch: Dict[type, List[Rule]] = {}
    for rule in active:
        if cfg.path_allowed(rule.name, path):
            continue
        raw.extend(rule.begin_module(ctx))
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    if dispatch:
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node), ()):
                raw.extend(rule.check_node(node, ctx))

    findings = []
    for finding in raw:
        if cfg.path_allowed(finding.rule, path) or _suppressed(finding, ctx):
            continue
        severity = cfg.severity_of(finding.rule)
        if severity != finding.severity:
            finding = Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                severity=severity,
            )
        findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


@dataclass
class LintReport:
    """Everything one :func:`run_lint` pass produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no *error*-severity finding survived."""
        return not any(f.severity == "error" for f in self.findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def render_text(self) -> str:
        lines = []
        for finding in self.findings:
            lines.append(
                f"{finding.location()}: {finding.severity}[{finding.rule}] "
                f"{finding.message}"
            )
        lines.append(
            f"repro lint: {len(self.errors)} error(s), "
            f"{len(self.findings) - len(self.errors)} warning(s) "
            f"in {self.files_checked} file(s)"
        )
        return "\n".join(lines)

    def to_payload(self) -> Dict[str, object]:
        """Machine-readable form, shape-aligned with the determinism gate's
        ``--json`` output (``scripts/check_determinism.py``)."""
        return {
            "gate": "lint",
            "ok": self.ok,
            "files_checked": self.files_checked,
            "errors": len(self.errors),
            "warnings": len(self.findings) - len(self.errors),
            "rules": list(self.rules_run),
            "findings": [f.to_payload() for f in self.findings],
        }


def _python_files(root: Path) -> List[Path]:
    if root.is_file():
        return [root]
    # Sorted for deterministic report order (and determinism is the point).
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def default_lint_root() -> Path:
    """The shipped source tree: the installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent


def run_lint(
    paths: Optional[Sequence] = None,
    rules: Optional[Sequence[Rule]] = None,
    config=None,
    invariants: bool = True,
) -> LintReport:
    """Lint ``paths`` (files or directory trees; default: the shipped
    ``repro`` package) and run the project invariant checkers."""
    from repro.analysis.lint.config import DEFAULT_CONFIG
    from repro.analysis.lint.invariants import run_invariants
    from repro.analysis.lint.rules import default_rules

    cfg = config if config is not None else DEFAULT_CONFIG
    active = list(rules) if rules is not None else default_rules()
    roots = [Path(p) for p in paths] if paths else [default_lint_root()]

    report = LintReport(rules_run=[rule.name for rule in active])
    sources: Dict[str, str] = {}
    for root in roots:
        if not root.exists():
            raise ReproError(f"lint path does not exist: {root}")
        for file_path in _python_files(root):
            posix = file_path.as_posix()
            try:
                source = file_path.read_text(encoding="utf-8")
            except OSError as error:
                report.findings.append(
                    Finding(
                        rule="io",
                        path=posix,
                        line=1,
                        col=0,
                        message=f"unreadable: {error}",
                    )
                )
                continue
            sources[posix] = source
            report.files_checked += 1
            report.findings.extend(
                lint_source(source, path=posix, rules=active, config=cfg)
            )
    if invariants:
        report.findings.extend(run_invariants(sources, config=cfg))
        report.rules_run += [
            name for name in INVARIANT_RULE_NAMES if name not in report.rules_run
        ]
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


#: Filled in by repro.analysis.lint.invariants at import; listed here to
#: avoid a circular import in run_lint's rules_run bookkeeping.
INVARIANT_RULE_NAMES: List[str] = []


__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "SUPPRESS_MARK",
    "default_lint_root",
    "lint_source",
    "run_lint",
]
