"""Visitor core of the determinism & invariant linter.

The framework is deliberately small:

* a :class:`Rule` inspects AST nodes of the types it declares interest in
  (``node_types``) and yields :class:`Finding`\\ s; ``begin_module`` lets it
  reset per-file state;
* :class:`FileContext` gives rules the parsed module, the raw source lines,
  and a resolved import-alias table, so a rule can ask "what dotted name
  does this call really target?" without re-deriving imports itself;
* :func:`lint_source` runs every rule in **one** AST walk per file and
  applies suppression comments and the per-path allowlist from
  :mod:`repro.analysis.lint.config`;
* :func:`run_lint` maps that over a file tree and finishes with the
  project-level invariant checkers
  (:mod:`repro.analysis.lint.invariants`), returning a :class:`LintReport`
  whose ``ok`` gates CI.

Suppression syntax (checked against the finding's physical line, or
anywhere in the file for the ``disable-file`` form)::

    risky_call()  # repro-lint: disable=wall-clock
    # repro-lint: disable-file=float-equality

A suppression comment that no longer masks any finding is itself
reported (rule ``unused-suppression``, warning severity) so stale
exemptions cannot rot silently; ``repro lint --fix-suppressions`` lists
the removal candidates.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.util.validation import ReproError

#: Marker introducing a suppression comment.
SUPPRESS_MARK = "# repro-lint:"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str           #: posix-style path as given to the linter
    line: int           #: 1-based line of the offending node
    col: int            #: 0-based column
    message: str
    severity: str = "error"   #: ``error`` gates the exit code; ``warning`` does not

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_payload(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }


def module_name_for_path(path: str, known_paths=None) -> str:
    """Dotted module name of a source file.

    Walks up from the file while each parent directory holds an
    ``__init__.py`` -- so ``.../src/repro/sim/trace.py`` becomes
    ``repro.sim.trace`` wherever the tree is checked out.  With
    ``known_paths`` (a set of posix paths) package membership is decided
    by set membership instead of the filesystem, which lets callers name
    in-memory fixture trees.
    """
    file_path = Path(path)
    stem = file_path.stem
    parts: List[str] = [] if stem == "__init__" else [stem]

    def _is_package(directory: Path) -> bool:
        marker = directory / "__init__.py"
        if known_paths is not None:
            return marker.as_posix() in known_paths
        return marker.is_file()

    directory = file_path.parent
    while directory.name and _is_package(directory):
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else stem


def build_export_map(sources: Mapping[str, str]) -> Dict[str, Dict[str, str]]:
    """Module name -> {exported name -> dotted origin} for a source set.

    Records every top-level ``import``/``from-import`` binding of every
    module, so :meth:`FileContext.dotted_name` can chase ``from x import
    y as z`` chains through module-level re-exports back to the real
    origin (a re-exported ``time`` no longer escapes the wall-clock
    rule).  ``sources`` maps posix paths to source text, as produced by
    :func:`run_lint`'s read loop.
    """
    known = set(sources)
    exports: Dict[str, Dict[str, str]] = {}
    for path in sorted(sources):
        try:
            tree = ast.parse(sources[path])
        except SyntaxError:
            continue
        module = module_name_for_path(path, known_paths=known)
        table = exports.setdefault(module, {})
        is_package = Path(path).stem == "__init__"
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    table[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                        if alias.asname
                        else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_import_base(node, module, is_package)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
    return exports


def _resolve_import_base(
    node: ast.ImportFrom, module_name: Optional[str], is_package: bool
) -> Optional[str]:
    """Absolute dotted module an ``ImportFrom`` pulls names out of, or
    ``None`` when a relative import cannot be anchored."""
    if not node.level:
        return node.module
    if not module_name:
        return None
    parts = module_name.split(".")
    # The anchor package: the module's own package, then one more level
    # up per extra leading dot.
    drop = node.level if not is_package else node.level - 1
    if drop >= len(parts):
        return None
    base_parts = parts[: len(parts) - drop]
    if node.module:
        base_parts.append(node.module)
    return ".".join(base_parts)


class FileContext:
    """Per-file state shared by every rule during one walk.

    ``aliases`` maps local names to the dotted origin they were imported
    as: ``import numpy as np`` yields ``{"np": "numpy"}``, ``from time
    import perf_counter as pc`` yields ``{"pc": "time.perf_counter"}``.
    With an ``export_map`` (see :func:`build_export_map`) resolution
    additionally chases module-level re-exports, and with a
    ``module_name`` relative imports resolve to absolute dotted names.
    """

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        export_map: Optional[Mapping[str, Mapping[str, str]]] = None,
        module_name: Optional[str] = None,
    ):
        self.path = path
        self.tree = tree
        self.lines = source.splitlines()
        self.export_map = export_map or {}
        self.module_name = module_name
        self.aliases: Dict[str, str] = {}
        is_package = Path(path).stem == "__init__"
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_import_base(node, module_name, is_package)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def resolve_export(self, dotted: str) -> str:
        """Chase ``dotted`` through module-level re-exports to its origin.

        ``pkg.compat.clock`` becomes ``time.perf_counter`` when
        ``pkg/compat.py`` does ``from time import perf_counter as
        clock``.  Cycles (e.g. ``from . import mod`` in a package
        ``__init__``) terminate at the first repeated name.
        """
        seen = set()
        while dotted not in seen:
            seen.add(dotted)
            head, _, leaf = dotted.rpartition(".")
            table = self.export_map.get(head) if head else None
            if not table or leaf not in table:
                return dotted
            dotted = table[leaf]
        return dotted

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """The fully resolved dotted name of a ``Name``/``Attribute`` chain,
        or ``None`` for anything dynamic (subscripts, calls, ...)."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        dotted = ".".join(reversed(parts))
        return self.resolve_export(dotted) if self.export_map else dotted

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class of all single-file lint rules."""

    #: Unique kebab-case identifier (used in suppressions and config).
    name: str = ""
    #: One-line description of what the rule flags.
    summary: str = ""
    #: Which determinism invariant the rule protects (docs / --list-rules).
    rationale: str = ""
    #: AST node classes the rule wants to see; empty means module-only.
    node_types: Tuple[type, ...] = ()

    def begin_module(self, ctx: FileContext) -> Iterable[Finding]:
        """Called once per file before the walk; may yield findings."""
        return ()

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        """Called for every node whose type is in ``node_types``."""
        return ()

    # ------------------------------------------------------------ helpers
    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _rules_of(text: str, directive: str) -> List[str]:
    """Rule names a ``# repro-lint: <directive>=a,b`` comment targets."""
    mark = SUPPRESS_MARK + " " + directive + "="
    index = text.find(mark)
    if index < 0:
        # tolerate no space after the colon
        mark = SUPPRESS_MARK + directive + "="
        index = text.find(mark)
        if index < 0:
            return []
    spec = text[index + len(mark):].split("#")[0]
    return [rule.strip() for rule in spec.split(",") if rule.strip()]


def _suppressed(finding: Finding, ctx: FileContext) -> bool:
    """True when a suppression comment disables ``finding``."""
    line = ctx.line_text(finding.line)
    if finding.rule in _rules_of(line, "disable") or "all" in _rules_of(
        line, "disable"
    ):
        return True
    for text in ctx.lines:
        if SUPPRESS_MARK in text:
            rules = _rules_of(text, "disable-file")
            if finding.rule in rules or "all" in rules:
                return True
    return False


def _suppression_comments(
    source: str,
) -> List[Tuple[int, int, str, List[str], str]]:
    """``(line, col, directive, rules, text)`` per real suppression comment.

    Tokenize-based so suppression *examples* inside docstrings (this
    module has some) are not mistaken for live comments.
    """
    comments: List[Tuple[int, int, str, List[str], str]] = []
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return comments
    for token in tokens:
        if token.type != tokenize.COMMENT or SUPPRESS_MARK not in token.string:
            continue
        for directive in ("disable-file", "disable"):
            rules = _rules_of(token.string, directive)
            if rules:
                comments.append(
                    (
                        token.start[0],
                        token.start[1],
                        directive,
                        rules,
                        token.string.strip(),
                    )
                )
                break
    return comments


def _stale_suppressions(
    source: str, path: str, raw: List[Finding], cfg
) -> List[Finding]:
    """``unused-suppression`` findings for comments masking nothing.

    ``raw`` must be the pre-suppression findings of a run with the full
    default rule set -- under a rule subset the findings justifying a
    comment may simply not have been computed, so callers disable this
    check there.
    """
    live = [f for f in raw if not cfg.path_allowed(f.rule, path)]
    findings: List[Finding] = []
    for line, col, directive, rules, text in _suppression_comments(source):
        if directive == "disable":
            used = any(
                f.line == line and (f.rule in rules or "all" in rules)
                for f in live
            )
        else:
            used = any(
                f.rule in rules or "all" in rules for f in live
            )
        if not used:
            findings.append(
                Finding(
                    rule="unused-suppression",
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        f"suppression masks no finding: {text!r} "
                        f"(remove it)"
                    ),
                    severity=cfg.severity_of("unused-suppression"),
                )
            )
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    config=None,
    export_map: Optional[Mapping[str, Mapping[str, str]]] = None,
    module_name: Optional[str] = None,
    check_suppressions: Optional[bool] = None,
) -> List[Finding]:
    """Lint one module's source text; returns surviving findings.

    Findings are dropped when a suppression comment disables them or the
    config's per-path allowlist exempts the file from the rule, and
    re-labelled with the config's severity for the rule otherwise.

    ``export_map``/``module_name`` (see :func:`build_export_map`) let
    alias resolution chase re-exports across modules.
    ``check_suppressions`` controls stale-suppression reporting; the
    default (``None``) enables it exactly when the full default rule set
    runs, because staleness is meaningless under a rule subset.
    """
    from repro.analysis.lint.config import DEFAULT_CONFIG
    from repro.analysis.lint.rules import default_rules

    cfg = config if config is not None else DEFAULT_CONFIG
    if check_suppressions is None:
        check_suppressions = rules is None
    active = list(rules) if rules is not None else default_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Finding(
                rule="syntax",
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                message=f"file does not parse: {error.msg}",
            )
        ]
    ctx = FileContext(
        path, source, tree, export_map=export_map, module_name=module_name
    )

    raw: List[Finding] = []
    dispatch: Dict[type, List[Rule]] = {}
    for rule in active:
        if cfg.path_allowed(rule.name, path):
            continue
        raw.extend(rule.begin_module(ctx))
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    if dispatch:
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node), ()):
                raw.extend(rule.check_node(node, ctx))

    findings = []
    for finding in raw:
        if cfg.path_allowed(finding.rule, path) or _suppressed(finding, ctx):
            continue
        severity = cfg.severity_of(finding.rule)
        if severity != finding.severity:
            finding = Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                severity=severity,
            )
        findings.append(finding)
    if check_suppressions:
        findings.extend(_stale_suppressions(source, path, raw, cfg))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


@dataclass
class LintReport:
    """Everything one :func:`run_lint` pass produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no *error*-severity finding survived."""
        return not any(f.severity == "error" for f in self.findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def render_text(self) -> str:
        lines = []
        for finding in self.findings:
            lines.append(
                f"{finding.location()}: {finding.severity}[{finding.rule}] "
                f"{finding.message}"
            )
        lines.append(
            f"repro lint: {len(self.errors)} error(s), "
            f"{len(self.findings) - len(self.errors)} warning(s) "
            f"in {self.files_checked} file(s)"
        )
        return "\n".join(lines)

    def to_payload(self) -> Dict[str, object]:
        """Machine-readable form, shape-aligned with the determinism gate's
        ``--json`` output (``scripts/check_determinism.py``)."""
        return {
            "gate": "lint",
            "ok": self.ok,
            "files_checked": self.files_checked,
            "errors": len(self.errors),
            "warnings": len(self.findings) - len(self.errors),
            "rules": list(self.rules_run),
            "findings": [f.to_payload() for f in self.findings],
        }


def _python_files(root: Path) -> List[Path]:
    if root.is_file():
        return [root]
    # Sorted for deterministic report order (and determinism is the point).
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def default_lint_root() -> Path:
    """The shipped source tree: the installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent


def run_lint(
    paths: Optional[Sequence] = None,
    rules: Optional[Sequence[Rule]] = None,
    config=None,
    invariants: bool = True,
) -> LintReport:
    """Lint ``paths`` (files or directory trees; default: the shipped
    ``repro`` package) and run the project invariant checkers."""
    from repro.analysis.lint.config import DEFAULT_CONFIG
    from repro.analysis.lint.invariants import run_invariants
    from repro.analysis.lint.rules import default_rules

    cfg = config if config is not None else DEFAULT_CONFIG
    active = list(rules) if rules is not None else default_rules()
    roots = [Path(p) for p in paths] if paths else [default_lint_root()]

    report = LintReport(rules_run=[rule.name for rule in active])
    check_suppressions = rules is None
    if check_suppressions:
        report.rules_run.append("unused-suppression")
    sources: Dict[str, str] = {}
    for root in roots:
        if not root.exists():
            raise ReproError(f"lint path does not exist: {root}")
        for file_path in _python_files(root):
            posix = file_path.as_posix()
            try:
                source = file_path.read_text(encoding="utf-8")
            except OSError as error:
                report.findings.append(
                    Finding(
                        rule="io",
                        path=posix,
                        line=1,
                        col=0,
                        message=f"unreadable: {error}",
                    )
                )
                continue
            sources[posix] = source
    # Two passes: the export map of the whole set must exist before any
    # one file is linted, so re-export chains resolve across modules.
    export_map = build_export_map(sources)
    known = set(sources)
    for posix in sorted(sources):
        report.files_checked += 1
        report.findings.extend(
            lint_source(
                sources[posix],
                path=posix,
                rules=active,
                config=cfg,
                export_map=export_map,
                module_name=module_name_for_path(posix, known_paths=known),
                check_suppressions=check_suppressions,
            )
        )
    if invariants:
        report.findings.extend(run_invariants(sources, config=cfg))
        report.rules_run += [
            name for name in INVARIANT_RULE_NAMES if name not in report.rules_run
        ]
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


#: Filled in by repro.analysis.lint.invariants at import; listed here to
#: avoid a circular import in run_lint's rules_run bookkeeping.
INVARIANT_RULE_NAMES: List[str] = []


__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "SUPPRESS_MARK",
    "build_export_map",
    "default_lint_root",
    "lint_source",
    "module_name_for_path",
    "run_lint",
]
