"""Per-path and per-rule configuration of the linter.

Two knobs, both data (no behaviour):

* **allowlist** -- path patterns where a rule simply does not apply.  The
  shipped defaults encode the repo's sanctioned exceptions: wall-clock
  timing in the report/runner/bench progress output (which never feeds a
  cache key, a trace or a payload), and ``os.environ`` access inside the
  central :mod:`repro.config_env` module itself.
* **severity** -- ``error`` (gates the exit code) or ``warning``
  (reported, not gating) per rule.

Patterns are :mod:`fnmatch` globs matched against the posix form of the
linted path; a bare substring like ``experiments/report.py`` is treated as
``*experiments/report.py`` so configs stay independent of where the tree
is checked out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, Mapping, Tuple

from repro.util.validation import ReproError

SEVERITIES = ("error", "warning")

#: Paths where wall-clock timing is sanctioned: progress/elapsed reporting
#: that never reaches a payload, trace, or cache key.
TIMING_ALLOWED = (
    "experiments/report.py",
    "experiments/runner.py",
    "bench.py",
)

DEFAULT_ALLOW: Dict[str, Tuple[str, ...]] = {
    "wall-clock": TIMING_ALLOWED,
    # The one module allowed to read the environment (see repro.config_env).
    "env-read": ("config_env.py",),
}

#: Default per-rule severities for rules that should not gate the exit
#: code out of the box.  A stale suppression is hygiene, not a
#: determinism hazard.
DEFAULT_SEVERITY: Dict[str, str] = {
    "unused-suppression": "warning",
}


def _as_glob(pattern: str) -> str:
    return pattern if any(c in pattern for c in "*?[") else f"*{pattern}"


@dataclass(frozen=True)
class LintConfig:
    """Immutable linter configuration.

    ``allow`` maps rule name -> path patterns exempt from it; ``severity``
    maps rule name -> ``error``/``warning`` (unlisted rules are errors).
    """

    allow: Mapping[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOW)
    )
    severity: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_SEVERITY)
    )

    def __post_init__(self):
        for rule, level in self.severity.items():
            if level not in SEVERITIES:
                raise ReproError(
                    f"invalid severity {level!r} for rule {rule!r}; "
                    f"valid: {list(SEVERITIES)}"
                )

    def path_allowed(self, rule: str, path: str) -> bool:
        """True when ``path`` is exempt from ``rule``."""
        posix = path.replace("\\", "/")
        for pattern in self.allow.get(rule, ()):
            if fnmatch(posix, _as_glob(pattern)):
                return True
        return False

    def severity_of(self, rule: str) -> str:
        return self.severity.get(rule, "error")


#: The configuration the CLI and CI gate run with.
DEFAULT_CONFIG = LintConfig()


__all__ = [
    "DEFAULT_ALLOW",
    "DEFAULT_CONFIG",
    "DEFAULT_SEVERITY",
    "LintConfig",
    "SEVERITIES",
    "TIMING_ALLOWED",
]
