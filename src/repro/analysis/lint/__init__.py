"""Static determinism & invariant linter (``repro lint``).

The dynamic gates -- golden traces, serial/parallel equivalence, the
hypothesis A/B suites -- catch nondeterminism *after* it runs.  This
package catches the usual sources before run time, with an AST pass over
the shipped tree:

* :mod:`~repro.analysis.lint.core` -- visitor framework: rules, findings,
  suppression comments, the :func:`run_lint` driver;
* :mod:`~repro.analysis.lint.rules` -- determinism rules (wall-clock reads,
  unseeded RNGs, set-order leakage, float equality, mutable defaults,
  ad-hoc ``os.environ`` access);
* :mod:`~repro.analysis.lint.invariants` -- project contracts (dual
  implementation signatures, golden-payload key exclusion, cache-key field
  coverage);
* :mod:`~repro.analysis.lint.config` -- per-path allowlist and per-rule
  severities.

See ``docs/analysis.md`` for every rule's rationale and the suppression
syntax (``# repro-lint: disable=<rule>``).
"""

from repro.analysis.lint.config import DEFAULT_CONFIG, LintConfig
from repro.analysis.lint.core import (
    FileContext,
    Finding,
    LintReport,
    Rule,
    default_lint_root,
    lint_source,
    run_lint,
)
from repro.analysis.lint.invariants import run_invariants
from repro.analysis.lint.rules import default_rules

__all__ = [
    "DEFAULT_CONFIG",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintReport",
    "Rule",
    "default_lint_root",
    "default_rules",
    "lint_source",
    "run_invariants",
    "run_lint",
]
