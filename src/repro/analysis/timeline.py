"""Per-kernel execution timelines (the measured counterpart of Fig. 5).

Fig. 5 of the paper sketches how a kernel's executions migrate from RISC
mode through the intermediate ISEs to the fully reconfigured ISE as its
data paths complete.  :func:`kernel_timeline` reconstructs that staircase
from a simulation trace: consecutive executions served by the same
implementation (mode + level + ISE) are merged into *phases*, each with its
execution count (the measured ``NoE`` of Eq. 3) and latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.simulator import SimulationResult
from repro.util.tables import render_table
from repro.util.validation import ReproError


@dataclass(frozen=True)
class Phase:
    """A run of consecutive executions on one implementation."""

    mode: str            #: "risc" / "monocg" / "intermediate" / "selected"
    level: int           #: intermediate-ISE level (0 for risc/monocg)
    ise_name: Optional[str]
    start: int           #: cycle of the first execution of the phase
    end: int             #: cycle of the last execution (start time)
    executions: int      #: the measured NoE of this phase
    latency: int         #: per-execution latency during the phase


@dataclass
class KernelTimeline:
    """The phase sequence of one kernel within one window of the trace."""

    kernel: str
    phases: List[Phase]
    risc_latency: int

    @property
    def total_executions(self) -> int:
        return sum(p.executions for p in self.phases)

    @property
    def saved_cycles(self) -> int:
        """Cycles saved vs. executing every phase at the slowest observed
        latency (RISC mode, whenever the window contains RISC executions) --
        the *measured* analogue of the profit function's prediction (Eq. 4).
        """
        return sum(
            p.executions * (self.risc_latency - p.latency) for p in self.phases
        )

    def upgrade_points(self) -> List[int]:
        """Cycles at which the serving implementation improved (got a lower
        latency) -- the staircase steps of Fig. 5."""
        points = []
        for prev, phase in zip(self.phases, self.phases[1:]):
            if phase.latency < prev.latency:
                points.append(phase.start)
        return points

    def render(self) -> str:
        rows = [
            [
                p.mode,
                p.level,
                p.executions,
                p.latency,
                p.start,
                p.ise_name or "-",
            ]
            for p in self.phases
        ]
        return render_table(
            ["mode", "level", "NoE", "latency", "from cycle", "implementation"],
            rows,
            title=f"Execution timeline of {self.kernel} (Fig. 5 measured)",
        )


def kernel_timeline(
    result: SimulationResult,
    kernel: str,
    block_window: Optional[int] = None,
) -> KernelTimeline:
    """Build the phase timeline of ``kernel`` from a traced simulation.

    ``block_window`` restricts the timeline to the N-th iteration of the
    kernel's block (useful to look at one Fig. 5-style staircase); ``None``
    spans the whole run.
    """
    if result.trace is None:
        raise ReproError("kernel_timeline needs a run with collect_trace=True")
    records = result.trace.executions_of(kernel)
    if block_window is not None:
        block = next(
            (r.block for r in records), None
        )
        if block is None:
            raise ReproError(f"kernel {kernel!r} never executed")
        windows = result.trace.block_windows.get(block, [])
        if not 0 <= block_window < len(windows):
            raise ReproError(
                f"block {block!r} has {len(windows)} windows, "
                f"asked for {block_window}"
            )
        lo, hi = windows[block_window]
        records = [r for r in records if lo <= r.time <= hi]
    if not records:
        raise ReproError(f"kernel {kernel!r} has no executions in the window")

    risc_latency = max(r.latency for r in records)
    phases: List[Phase] = []
    current = None
    for r in records:
        key = (r.mode.value, r.level, r.ise_name, r.latency)
        if current is not None and current["key"] == key:
            current["end"] = r.time
            current["count"] += 1
        else:
            if current is not None:
                phases.append(_phase_from(current))
            current = {
                "key": key,
                "start": r.time,
                "end": r.time,
                "count": 1,
            }
    if current is not None:
        phases.append(_phase_from(current))
    return KernelTimeline(kernel=kernel, phases=phases, risc_latency=risc_latency)


def _phase_from(data: dict) -> Phase:
    mode, level, ise_name, latency = data["key"]
    return Phase(
        mode=mode,
        level=level,
        ise_name=ise_name,
        start=data["start"],
        end=data["end"],
        executions=data["count"],
        latency=latency,
    )


def timeline_payload(timeline: KernelTimeline) -> dict:
    """Plain-data form of a timeline (the ``kernel_timeline`` sweep metric
    stores this in cell records; round-trips through JSON exactly)."""
    return {
        "kernel": timeline.kernel,
        "risc_latency": timeline.risc_latency,
        "phases": [
            {
                "mode": p.mode,
                "level": p.level,
                "ise_name": p.ise_name,
                "start": p.start,
                "end": p.end,
                "executions": p.executions,
                "latency": p.latency,
            }
            for p in timeline.phases
        ],
    }


def timeline_from_payload(payload: dict) -> KernelTimeline:
    """Rebuild a :class:`KernelTimeline` from :func:`timeline_payload`."""
    phases = [
        Phase(
            mode=entry["mode"],
            level=entry["level"],
            ise_name=entry["ise_name"],
            start=entry["start"],
            end=entry["end"],
            executions=entry["executions"],
            latency=entry["latency"],
        )
        for entry in payload["phases"]
    ]
    return KernelTimeline(
        kernel=payload["kernel"],
        phases=phases,
        risc_latency=payload["risc_latency"],
    )


__all__ = [
    "Phase",
    "KernelTimeline",
    "kernel_timeline",
    "timeline_from_payload",
    "timeline_payload",
]
