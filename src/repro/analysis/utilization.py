"""Fabric occupancy and bitstream-port utilisation over a run.

Reconstructs, from the reconfiguration requests and the eviction log, how
many area units of each fabric were occupied over time, how long the FG
bitstream port streamed, and how the configured data paths turned over.
These are the quantities behind the paper's observation that the fine-
grained fabric's millisecond reconfigurations dominate the adaptation cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.fabric.datapath import FabricType
from repro.sim.simulator import SimulationResult
from repro.util.tables import render_table
from repro.util.validation import ReproError


@dataclass
class FabricUtilization:
    """Occupancy/traffic metrics of one simulation run."""

    total_cycles: int
    #: fabric -> time-averaged fraction of its area that was occupied
    mean_occupancy: Dict[FabricType, float]
    #: fabric -> peak occupied area units
    peak_occupancy: Dict[FabricType, int]
    #: fabric -> number of reconfigurations
    reconfigurations: Dict[FabricType, int]
    #: fraction of the run during which the FG bitstream port streamed
    fg_port_busy_fraction: float
    #: number of evictions (configured data paths displaced)
    evictions: int

    def render(self) -> str:
        rows = []
        for fabric in FabricType:
            rows.append(
                [
                    fabric.value.upper(),
                    f"{100 * self.mean_occupancy[fabric]:.1f}%",
                    self.peak_occupancy[fabric],
                    self.reconfigurations[fabric],
                ]
            )
        table = render_table(
            ["fabric", "mean occupancy", "peak units", "reconfigs"],
            rows,
            title="Fabric utilisation",
        )
        return (
            f"{table}\n"
            f"FG bitstream port busy {100 * self.fg_port_busy_fraction:.1f}% "
            f"of the run; {self.evictions} evictions"
        )


def fabric_utilization(result: SimulationResult) -> FabricUtilization:
    """Compute utilisation metrics from a simulation result."""
    if result.controller is None:
        raise ReproError("fabric_utilization needs the run's controller")
    controller = result.controller
    total = max(1, result.total_cycles)

    # Build +area / -area events per fabric: a copy occupies its area from
    # the start of its (re)configuration until it is evicted (or run end).
    events: Dict[FabricType, List[Tuple[int, int]]] = {f: [] for f in FabricType}
    fg_busy = 0
    reconfigs = {f: 0 for f in FabricType}
    # Eviction events, consumed FIFO per implementation name.
    pending_evictions: Dict[str, List[int]] = {}
    for when, name, area in controller.resources.eviction_log:
        pending_evictions.setdefault(name, []).append(when)
    for name in pending_evictions:
        pending_evictions[name].sort()

    consumed: Dict[str, int] = {}
    for request in controller.requests:
        fabric = request.fabric
        reconfigs[fabric] += 1
        if fabric is FabricType.FG:
            fg_busy += request.done - request.start
        area = _area_of(controller, request.impl_name)
        events[fabric].append((request.start, +area))
        # Match this copy with an eviction after its completion, if any.
        times = pending_evictions.get(request.impl_name, [])
        index = consumed.get(request.impl_name, 0)
        if index < len(times) and times[index] >= request.done:
            events[fabric].append((times[index], -area))
            consumed[request.impl_name] = index + 1
        else:
            events[fabric].append((result.total_cycles, -area))

    mean_occ: Dict[FabricType, float] = {}
    peak_occ: Dict[FabricType, int] = {}
    for fabric in FabricType:
        capacity = controller.budget.total(fabric)
        timeline = sorted(events[fabric])
        occupied = 0
        last_t = 0
        integral = 0
        peak = 0
        for t, delta in timeline:
            integral += occupied * (t - last_t)
            occupied += delta
            peak = max(peak, occupied)
            last_t = t
        integral += occupied * (result.total_cycles - last_t)
        mean_occ[fabric] = integral / (total * capacity) if capacity else 0.0
        peak_occ[fabric] = peak

    return FabricUtilization(
        total_cycles=result.total_cycles,
        mean_occupancy=mean_occ,
        peak_occupancy=peak_occ,
        reconfigurations=reconfigs,
        fg_port_busy_fraction=min(1.0, fg_busy / total),
        evictions=len(controller.resources.eviction_log),
    )


def _area_of(controller, impl_name: str) -> int:
    """Area of one copy of ``impl_name`` (from live copies, or 1 for copies
    that have since been evicted -- all standard data paths occupy one unit)."""
    copies = controller.resources.copies(impl_name)
    if copies:
        return copies[0].area
    return 1


__all__ = ["FabricUtilization", "fabric_utilization"]
