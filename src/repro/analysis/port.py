"""Bitstream-port analytics: queueing delays and cancellations.

The single sequential FG configuration port is the bottleneck resource of
the whole adaptation machinery; these metrics quantify how it behaved in a
run -- how long transfers queued before streaming, how much of its time it
streamed, and how many scheduled transfers a later decision cancelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.fabric.datapath import FabricType
from repro.sim.simulator import SimulationResult
from repro.util.tables import render_table
from repro.util.validation import ReproError


@dataclass
class PortReport:
    """Port behaviour of one simulation run."""

    transfers: int
    cancelled: int
    busy_cycles: int
    total_cycles: int
    #: queueing delay (cycles between request and stream start) per transfer
    wait_cycles: List[int]

    @property
    def busy_fraction(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return min(1.0, self.busy_cycles / self.total_cycles)

    @property
    def mean_wait_cycles(self) -> float:
        if not self.wait_cycles:
            return 0.0
        return sum(self.wait_cycles) / len(self.wait_cycles)

    @property
    def max_wait_cycles(self) -> int:
        return max(self.wait_cycles, default=0)

    @property
    def cancellation_rate(self) -> float:
        scheduled = self.transfers + self.cancelled
        if scheduled == 0:
            return 0.0
        return self.cancelled / scheduled

    def render(self) -> str:
        rows = [
            ["completed transfers", self.transfers],
            ["cancelled transfers", f"{self.cancelled} ({100 * self.cancellation_rate:.1f}%)"],
            ["port busy", f"{100 * self.busy_fraction:.1f}% of the run"],
            ["mean queueing delay", f"{self.mean_wait_cycles:,.0f} cycles"],
            ["max queueing delay", f"{self.max_wait_cycles:,} cycles"],
        ]
        return render_table(["metric", "value"], rows, title="FG bitstream port")


def port_report(result: SimulationResult) -> PortReport:
    """Analyse the FG port behaviour of ``result``.

    The queueing delay of a transfer is the gap between the cycle it was
    requested (its owning selection's commit) and the cycle it started
    streaming; with an idle port the delay is zero.
    """
    if result.controller is None:
        raise ReproError("port_report needs the run's controller")
    fg_requests = [
        r for r in result.controller.requests if r.fabric is FabricType.FG
    ]
    waits: List[int] = []
    busy = 0
    for request in fg_requests:
        waits.append(max(0, request.start - request.requested_at))
        busy += request.done - request.start
    # Cancelled transfers were scheduled (and appear in the request log) but
    # never streamed: reclaim their port time.
    busy -= result.controller.cancelled_port_cycles
    cancelled = result.controller.fg.cancelled_transfers
    return PortReport(
        transfers=len(fg_requests) - cancelled,
        cancelled=cancelled,
        busy_cycles=max(0, busy),
        total_cycles=result.total_cycles,
        wait_cycles=waits,
    )


__all__ = ["PortReport", "port_report"]
