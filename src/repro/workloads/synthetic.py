"""Synthetic workload generator.

Produces random-but-reproducible applications (blocks, kernels, data paths,
iteration traces) with tunable character: how bit- vs word-dominant the
data paths are, how many kernels per block, how bursty the execution counts
are.  Used by the property-based tests (any generated application must
simulate correctly under every policy, and invariants like
"mRTS >= RISC mode" must hold) and by the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.fabric.datapath import DataPathSpec
from repro.ise.kernel import Kernel
from repro.sim.program import Application, BlockIteration, FunctionalBlock, KernelIteration
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import ValidationError, check_positive


@dataclass(frozen=True)
class SyntheticWorkloadConfig:
    """Shape of a synthetic application."""

    n_blocks: int = 2
    kernels_per_block: Tuple[int, int] = (1, 4)     #: inclusive range
    datapaths_per_kernel: Tuple[int, int] = (1, 3)  #: inclusive range
    iterations: int = 8
    executions_range: Tuple[int, int] = (20, 400)
    gap_range: Tuple[int, int] = (30, 120)
    #: probability a data path is bit-dominant (FG-friendly)
    bit_dominant_probability: float = 0.5

    def __post_init__(self) -> None:
        check_positive("n_blocks", self.n_blocks)
        check_positive("iterations", self.iterations)
        for name in ("kernels_per_block", "datapaths_per_kernel",
                     "executions_range", "gap_range"):
            lo, hi = getattr(self, name)
            if not (0 < lo <= hi):
                raise ValidationError(f"{name} must be a valid range, got ({lo}, {hi})")
        if not 0.0 <= self.bit_dominant_probability <= 1.0:
            raise ValidationError("bit_dominant_probability must be in [0, 1]")


def _random_datapath(rng: np.random.Generator, name: str, bit_dominant: bool) -> DataPathSpec:
    if bit_dominant:
        word_ops = int(rng.integers(2, 12))
        bit_ops = int(rng.integers(16, 56))
        mul_ops = int(rng.integers(0, 3))
    else:
        word_ops = int(rng.integers(16, 48))
        bit_ops = int(rng.integers(0, 8))
        mul_ops = int(rng.integers(0, 9))
    return DataPathSpec(
        name=name,
        word_ops=word_ops,
        mul_ops=mul_ops,
        div_ops=int(rng.integers(0, 2)),
        bit_ops=bit_ops,
        mem_bytes=int(rng.integers(8, 72)),
        fg_depth=int(rng.integers(4, 16)),
        sw_cycles=int(rng.integers(60, 260)),
        invocations=int(rng.integers(2, 17)),
        parallelizable=bool(rng.random() < 0.3),
    )


def synthetic_application(
    config: SyntheticWorkloadConfig = SyntheticWorkloadConfig(),
    seed: SeedLike = 0,
) -> Application:
    """Generate a reproducible random application for ``seed``."""
    rng = make_rng(seed)
    blocks: List[FunctionalBlock] = []
    for b in range(config.n_blocks):
        lo, hi = config.kernels_per_block
        n_kernels = int(rng.integers(lo, hi + 1))
        kernels = []
        for k in range(n_kernels):
            lo_d, hi_d = config.datapaths_per_kernel
            n_dps = int(rng.integers(lo_d, hi_d + 1))
            datapaths = [
                _random_datapath(
                    rng,
                    name=f"b{b}k{k}d{d}",
                    bit_dominant=bool(rng.random() < config.bit_dominant_probability),
                )
                for d in range(n_dps)
            ]
            kernels.append(
                Kernel(
                    name=f"b{b}.k{k}",
                    base_cycles=int(rng.integers(40, 200)),
                    datapaths=datapaths,
                )
            )
        blocks.append(FunctionalBlock(name=f"B{b}", kernels=kernels))

    iterations: List[BlockIteration] = []
    lo_e, hi_e = config.executions_range
    lo_g, hi_g = config.gap_range
    for _ in range(config.iterations):
        for block in blocks:
            kernel_iterations = [
                KernelIteration(
                    kernel=kernel.name,
                    executions=int(rng.integers(lo_e, hi_e + 1)),
                    gap=int(rng.integers(lo_g, hi_g + 1)),
                )
                for kernel in block.kernels
            ]
            iterations.append(BlockIteration(block.name, kernel_iterations))

    return Application(
        name=f"synthetic-{seed}", blocks=blocks, iterations=iterations
    )


__all__ = ["SyntheticWorkloadConfig", "synthetic_application"]
