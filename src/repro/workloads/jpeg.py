"""A JPEG encoder workload (generality beyond the paper's H.264 study).

The paper's run-time system is application-agnostic: any application made
of functional blocks with forecastable kernels can use it.  This module
provides a second, structurally different workload -- a baseline JPEG
encoder with two functional blocks:

* ``TRANSFORM``: colour conversion (word-level multiply-accumulate),
  8x8 DCT (word-level adds), and quantisation (multiplies) -- thoroughly
  data-dominant, CG-friendly;
* ``ENTROPY``: zig-zag reordering and Huffman bit packing -- control- and
  bit-dominant, FG-friendly.

Per-image execution counts scale with image complexity (busy images produce
more non-zero coefficients, hence more entropy work), driven by a seeded
complexity trace.  Unlike the H.264 encoder there is no temporal prediction,
so counts change *between* images but not within smooth scenes -- a
different adaptation profile for the run-time system.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.fabric.cost_model import DEFAULT_COST_MODEL, TechnologyCostModel
from repro.fabric.datapath import DataPathSpec
from repro.fabric.resources import ResourceBudget
from repro.ise.builder import BuilderConfig, ISEBuilder
from repro.ise.kernel import Kernel
from repro.ise.library import ISELibrary
from repro.sim.program import Application, BlockIteration, FunctionalBlock, KernelIteration
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive

JPEG_DATAPATHS: Dict[str, DataPathSpec] = {
    spec.name: spec
    for spec in [
        DataPathSpec(
            name="ycc.mac",
            word_ops=18, mul_ops=9, mem_bytes=24, fg_depth=8,
            sw_cycles=170, invocations=8,
        ),
        DataPathSpec(
            name="dct8.row",
            word_ops=26, mem_bytes=32, fg_depth=10, sw_cycles=180,
            invocations=8, parallelizable=True,
        ),
        DataPathSpec(
            name="dct8.col",
            word_ops=26, mem_bytes=32, fg_depth=10, sw_cycles=180, invocations=8,
        ),
        DataPathSpec(
            name="quant.div",
            word_ops=6, mul_ops=12, mem_bytes=32, fg_depth=6,
            sw_cycles=200, invocations=8,
        ),
        DataPathSpec(
            name="zz.scan",
            word_ops=4, bit_ops=36, mem_bytes=16, fg_depth=6,
            sw_cycles=150, invocations=6,
        ),
        DataPathSpec(
            name="huff.pack",
            word_ops=6, bit_ops=44, mem_bytes=8, fg_depth=8,
            sw_cycles=190, invocations=6,
        ),
    ]
}


def jpeg_kernels() -> Dict[str, Kernel]:
    """All kernels of the JPEG encoder, keyed by name."""
    dp = JPEG_DATAPATHS
    kernels = [
        Kernel("jpeg.ycc", base_cycles=90, datapaths=[dp["ycc.mac"]]),
        Kernel("jpeg.dct8", base_cycles=110, datapaths=[dp["dct8.row"], dp["dct8.col"]]),
        Kernel("jpeg.quant", base_cycles=80, datapaths=[dp["quant.div"]]),
        Kernel(
            "jpeg.entropy",
            base_cycles=120,
            datapaths=[dp["zz.scan"], dp["huff.pack"]],
        ),
    ]
    return {k.name: k for k in kernels}


def jpeg_blocks() -> List[FunctionalBlock]:
    """The two functional blocks of the JPEG encoder."""
    kernels = jpeg_kernels()
    return [
        FunctionalBlock(
            "TRANSFORM",
            [kernels["jpeg.ycc"], kernels["jpeg.dct8"], kernels["jpeg.quant"]],
        ),
        FunctionalBlock("ENTROPY", [kernels["jpeg.entropy"]]),
    ]


def image_complexity(images: int, seed: SeedLike = 0) -> List[float]:
    """Complexity factor per image in [0.2, 1.5] (busy images -> more
    non-zero coefficients -> more entropy-coding work)."""
    check_positive("images", images)
    rng = make_rng(seed)
    return [float(np.round(rng.uniform(0.2, 1.5), 3)) for _ in range(images)]


def jpeg_application(
    images: int = 12,
    blocks_per_image: int = 300,
    seed: SeedLike = 0,
) -> Application:
    """A JPEG encoding run over ``images`` images of varying complexity."""
    check_positive("blocks_per_image", blocks_per_image)
    complexities = image_complexity(images, seed)
    iterations: List[BlockIteration] = []
    for c in complexities:
        mcu = blocks_per_image
        iterations.append(
            BlockIteration(
                "TRANSFORM",
                [
                    KernelIteration("jpeg.ycc", mcu, gap=30),
                    KernelIteration("jpeg.dct8", mcu, gap=35),
                    KernelIteration("jpeg.quant", mcu, gap=30),
                ],
            )
        )
        iterations.append(
            BlockIteration(
                "ENTROPY",
                [
                    KernelIteration(
                        "jpeg.entropy", max(1, int(round(mcu * c))), gap=40
                    )
                ],
            )
        )
    return Application(f"jpeg-{images}i", jpeg_blocks(), iterations)


def jpeg_library(
    budget: ResourceBudget,
    cost_model: TechnologyCostModel = DEFAULT_COST_MODEL,
    builder_config: Optional[BuilderConfig] = None,
) -> ISELibrary:
    """The compile-time prepared ISE library of the JPEG encoder."""
    builder = ISEBuilder(cost_model=cost_model, config=builder_config or BuilderConfig())
    return ISELibrary(
        list(jpeg_kernels().values()), budget, cost_model=cost_model, builder=builder
    )


__all__ = [
    "JPEG_DATAPATHS",
    "jpeg_kernels",
    "jpeg_blocks",
    "image_complexity",
    "jpeg_application",
    "jpeg_library",
]
