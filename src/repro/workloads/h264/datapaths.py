"""Data-path specs of the H.264 encoder kernels.

The operation mixes are modelled after the RISPP/KAHRISMA publications'
descriptions of these kernels (SAD/SATD rows for motion estimation,
transform rows/columns, 6-tap motion-compensation filters, bit-level
zig-zag/CAVLC packing, and the deblocking filter's condition/filter split
of the paper's Section 2).  Absolute numbers are a model; what matters is
the *character* of each data path: bit-dominant ones favour the FG fabric,
word/multiply-dominant ones the CG fabric, and each kernel mixes both.
"""

from __future__ import annotations

from typing import Dict

from repro.fabric.datapath import DataPathSpec


def _specs() -> Dict[str, DataPathSpec]:
    specs = [
        # ---------------------------------------------------- ME: me.sad
        DataPathSpec(
            name="sad.row",
            word_ops=32, mem_bytes=32, fg_depth=10, sw_cycles=260,
            invocations=16, parallelizable=True,
        ),
        DataPathSpec(
            name="sad.acc",
            word_ops=8, mem_bytes=8, fg_depth=4, sw_cycles=60, invocations=16,
        ),
        # --------------------------------------------------- ME: me.satd
        DataPathSpec(
            name="satd.ht",
            word_ops=28, mem_bytes=32, fg_depth=10, sw_cycles=180, invocations=8,
        ),
        DataPathSpec(
            name="satd.abs",
            word_ops=8, bit_ops=4, mem_bytes=16, fg_depth=6, sw_cycles=90,
            invocations=8,
        ),
        # ------------------------------------------------- EE: ee.dct4x4
        DataPathSpec(
            name="dct.row",
            word_ops=16, mem_bytes=32, fg_depth=8, sw_cycles=150, invocations=8,
        ),
        DataPathSpec(
            name="dct.col",
            word_ops=16, mem_bytes=32, fg_depth=8, sw_cycles=150, invocations=8,
        ),
        # ---------------------------------------------------- EE: ee.ht
        DataPathSpec(
            name="ht.hadamard",
            word_ops=24, mem_bytes=16, fg_depth=8, sw_cycles=160, invocations=4,
        ),
        # ------------------------------------------------ EE: ee.iquant
        DataPathSpec(
            name="iq.quant",
            word_ops=8, mul_ops=16, mem_bytes=32, fg_depth=6, sw_cycles=190,
            invocations=8,
        ),
        # ------------------------------------------------- EE: ee.ipred
        DataPathSpec(
            name="ipred.dc",
            word_ops=12, bit_ops=12, mem_bytes=24, fg_depth=8, sw_cycles=170,
            invocations=6,
        ),
        DataPathSpec(
            name="ipred.hdc",
            word_ops=12, bit_ops=16, mem_bytes=16, fg_depth=8, sw_cycles=160,
            invocations=6,
        ),
        # ------------------------------------------------- EE: ee.mc_hz
        DataPathSpec(
            name="mc.filter6",
            word_ops=36, mul_ops=6, mem_bytes=48, fg_depth=12, sw_cycles=240,
            invocations=8, parallelizable=True,
        ),
        DataPathSpec(
            name="mc.round",
            word_ops=8, mem_bytes=16, fg_depth=4, sw_cycles=80, invocations=8,
        ),
        # ------------------------------------------------- EE: ee.cavlc
        DataPathSpec(
            name="cavlc.zigzag",
            word_ops=6, bit_ops=20, mem_bytes=16, fg_depth=6, sw_cycles=140,
            invocations=6,
        ),
        DataPathSpec(
            name="cavlc.bitpack",
            word_ops=8, bit_ops=24, mem_bytes=8, fg_depth=8, sw_cycles=150,
            invocations=6,
        ),
        # -------------------------------------------------- EE: ee.idct
        DataPathSpec(
            name="idct.row",
            word_ops=16, mem_bytes=32, fg_depth=8, sw_cycles=150, invocations=8,
        ),
        DataPathSpec(
            name="idct.col",
            word_ops=16, mem_bytes=32, fg_depth=8, sw_cycles=150, invocations=8,
        ),
        # ---------------------------------------- LF: lf.deblock_luma
        # The paper's case study (Section 2): a control-dominant bit-level
        # condition data path and a data-dominant word-level filter data
        # path, plus the strong filter used on intra edges.
        DataPathSpec(
            name="dbl.cond",
            word_ops=6, bit_ops=48, mem_bytes=16, fg_depth=8, sw_cycles=180,
            invocations=8,
        ),
        DataPathSpec(
            name="dbl.filt",
            word_ops=32, mul_ops=4, mem_bytes=48, fg_depth=12, sw_cycles=220,
            invocations=8, parallelizable=True,
        ),
        DataPathSpec(
            name="dbl.sfilt",
            word_ops=40, mul_ops=2, mem_bytes=32, fg_depth=14, sw_cycles=90,
            invocations=4,
        ),
        # -------------------------------------- LF: lf.deblock_chroma
        DataPathSpec(
            name="dbc.cond",
            word_ops=4, bit_ops=32, mem_bytes=8, fg_depth=6, sw_cycles=140,
            invocations=4,
        ),
        DataPathSpec(
            name="dbc.filt",
            word_ops=20, mul_ops=2, mem_bytes=24, fg_depth=8, sw_cycles=180,
            invocations=4,
        ),
    ]
    return {spec.name: spec for spec in specs}


#: All data-path specs of the H.264 encoder, keyed by name.
H264_DATAPATHS: Dict[str, DataPathSpec] = _specs()

__all__ = ["H264_DATAPATHS"]
