"""Factories for the H.264 application and its compile-time ISE library."""

from __future__ import annotations

from typing import Optional

from repro.fabric.cost_model import DEFAULT_COST_MODEL, TechnologyCostModel
from repro.fabric.resources import ResourceBudget
from repro.ise.builder import BuilderConfig, ISEBuilder
from repro.ise.library import ISELibrary
from repro.sim.program import Application
from repro.util.rng import SeedLike
from repro.workloads.h264.kernels import h264_blocks
from repro.workloads.h264.traces import h264_iterations


def h264_application(
    frames: int = 16,
    seed: SeedLike = 0,
    scale: float = 0.6,
) -> Application:
    """The H.264 encoder application: 3 blocks x ``frames`` iterations.

    ``scale`` multiplies all execution counts; the default of 0.6 is the
    calibration point at which the functional-block durations relate to the
    FG reconfiguration time the way the paper's results imply (per-block FG
    re-selection pays off only for the heavyweight kernels, CG re-selection
    always does)."""
    return Application(
        name=f"h264-{frames}f",
        blocks=h264_blocks(),
        iterations=h264_iterations(frames=frames, seed=seed, scale=scale),
    )


def h264_library(
    budget: ResourceBudget,
    cost_model: TechnologyCostModel = DEFAULT_COST_MODEL,
    builder_config: Optional[BuilderConfig] = None,
) -> ISELibrary:
    """The compile-time prepared ISE library of the encoder for ``budget``."""
    builder = ISEBuilder(
        cost_model=cost_model, config=builder_config or BuilderConfig()
    )
    kernels = [k for block in h264_blocks() for k in block.kernels]
    return ISELibrary(kernels, budget, cost_model=cost_model, builder=builder)


def deblocking_application(
    frames: int = 16,
    seed: SeedLike = 0,
    scale: float = 0.6,
) -> Application:
    """The encoder reduced to its in-loop deblocking filter (Section 2).

    One LF block iteration per frame, with the same seeded scene-activity
    trace as the full encoder -- the workload of the golden-trace
    regression tests, small enough for an exact committed snapshot."""
    blocks = [block for block in h264_blocks() if block.name == "LF"]
    iterations = [
        iteration
        for iteration in h264_iterations(frames=frames, seed=seed, scale=scale)
        if iteration.block == "LF"
    ]
    return Application(
        name=f"deblocking-{frames}f", blocks=blocks, iterations=iterations
    )


def deblocking_library(
    budget: ResourceBudget,
    cost_model: TechnologyCostModel = DEFAULT_COST_MODEL,
    builder_config: Optional[BuilderConfig] = None,
) -> ISELibrary:
    """The ISE library restricted to the deblocking-filter kernels."""
    builder = ISEBuilder(
        cost_model=cost_model, config=builder_config or BuilderConfig()
    )
    kernels = [
        k
        for block in h264_blocks()
        if block.name == "LF"
        for k in block.kernels
    ]
    return ISELibrary(kernels, budget, cost_model=cost_model, builder=builder)


__all__ = [
    "h264_application",
    "h264_library",
    "deblocking_application",
    "deblocking_library",
]
