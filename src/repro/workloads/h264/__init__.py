"""The H.264/AVC video encoder workload (Section 5.1 of the paper).

The encoder is modelled after the application structure the authors use
([17]): three functional blocks -- Motion Estimation (ME), the Encoding
Engine (EE, the biggest one with seven kernels), and the in-Loop Filter
(LF, the deblocking filter of the motivational case study) -- with kernels
whose data paths mix control-dominant bit-level and data-dominant
word-level processing.
"""

from repro.workloads.h264.datapaths import H264_DATAPATHS
from repro.workloads.h264.kernels import h264_kernels, h264_blocks
from repro.workloads.h264.traces import (
    frame_activity,
    deblock_executions_per_frame,
    h264_iterations,
)
from repro.workloads.h264.app import (
    h264_application,
    h264_library,
    deblocking_application,
    deblocking_library,
)
from repro.workloads.h264.pixels import (
    synthesize_frame,
    filtered_edge_count,
    pixel_grounded_deblock_counts,
)
from repro.workloads.h264.deblocking import deblocking_case_study

__all__ = [
    "H264_DATAPATHS",
    "h264_kernels",
    "h264_blocks",
    "frame_activity",
    "deblock_executions_per_frame",
    "h264_iterations",
    "h264_application",
    "h264_library",
    "deblocking_application",
    "deblocking_library",
    "deblocking_case_study",
    "synthesize_frame",
    "filtered_edge_count",
    "pixel_grounded_deblock_counts",
]
