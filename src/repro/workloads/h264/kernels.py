"""Kernels and functional blocks of the H.264 encoder.

Three functional blocks (following [17] of the paper): Motion Estimation,
the Encoding Engine (the biggest one, with seven kernels -- the paper notes
"the biggest one contains more than six kernels"), and the in-loop
deblocking filter.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ise.kernel import Kernel
from repro.sim.program import FunctionalBlock
from repro.workloads.h264.datapaths import H264_DATAPATHS


def h264_kernels() -> Dict[str, Kernel]:
    """All kernels of the encoder, keyed by name."""
    dp = H264_DATAPATHS
    kernels = [
        # Motion Estimation
        Kernel("me.sad", base_cycles=140, datapaths=[dp["sad.row"], dp["sad.acc"]]),
        Kernel("me.satd", base_cycles=120, datapaths=[dp["satd.ht"], dp["satd.abs"]]),
        # Encoding Engine
        Kernel("ee.dct4x4", base_cycles=100, datapaths=[dp["dct.row"], dp["dct.col"]]),
        Kernel("ee.ht", base_cycles=80, datapaths=[dp["ht.hadamard"]]),
        Kernel("ee.iquant", base_cycles=90, datapaths=[dp["iq.quant"]]),
        Kernel(
            "ee.ipred", base_cycles=110, datapaths=[dp["ipred.dc"], dp["ipred.hdc"]]
        ),
        Kernel(
            "ee.mc_hz", base_cycles=130, datapaths=[dp["mc.filter6"], dp["mc.round"]]
        ),
        Kernel(
            "ee.cavlc",
            base_cycles=120,
            datapaths=[dp["cavlc.zigzag"], dp["cavlc.bitpack"]],
        ),
        Kernel("ee.idct", base_cycles=100, datapaths=[dp["idct.row"], dp["idct.col"]]),
        # Loop Filter (deblocking, the Section 2 case study)
        Kernel(
            "lf.deblock_luma",
            base_cycles=120,
            datapaths=[dp["dbl.cond"], dp["dbl.filt"], dp["dbl.sfilt"]],
        ),
        Kernel(
            "lf.deblock_chroma",
            base_cycles=100,
            datapaths=[dp["dbc.cond"], dp["dbc.filt"]],
        ),
    ]
    return {k.name: k for k in kernels}


def h264_blocks() -> List[FunctionalBlock]:
    """The three functional blocks of the encoder."""
    kernels = h264_kernels()
    return [
        FunctionalBlock("ME", [kernels["me.sad"], kernels["me.satd"]]),
        FunctionalBlock(
            "EE",
            [
                kernels["ee.dct4x4"],
                kernels["ee.ht"],
                kernels["ee.iquant"],
                kernels["ee.ipred"],
                kernels["ee.mc_hz"],
                kernels["ee.cavlc"],
                kernels["ee.idct"],
            ],
        ),
        FunctionalBlock(
            "LF", [kernels["lf.deblock_luma"], kernels["lf.deblock_chroma"]]
        ),
    ]


__all__ = ["h264_kernels", "h264_blocks"]
