"""The motivational case study: three ISEs of the H.264 deblocking filter.

Section 2 of the paper studies three specific ISEs of the deblocking
filter's two data paths (the control-dominant *condition* and the
data-dominant *filter*):

* **ISE-1** -- both data paths on the fine-grained fabric: slowest to
  reconfigure (~2 x 1.2 ms) but fastest per execution, so it wins for large
  execution counts;
* **ISE-2** -- both data paths on the coarse-grained fabric: ready within
  microseconds but slowest per execution, best for few executions;
* **ISE-3** -- the multi-grained compromise (condition on FG, filter on CG).

:func:`deblocking_case_study` builds exactly these three ISEs; the Fig. 1
experiment sweeps their pif over the number of executions and the Fig. 2
experiment shows how the per-frame execution counts move the winner around.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.fabric.cost_model import DEFAULT_COST_MODEL, TechnologyCostModel
from repro.fabric.datapath import DataPathInstance, FabricType
from repro.ise.builder import order_for_reconfiguration
from repro.ise.ise import ISE
from repro.ise.kernel import Kernel
from repro.workloads.h264.datapaths import H264_DATAPATHS


def case_study_kernel() -> Kernel:
    """The deblocking-filter kernel restricted to the two case-study data
    paths (the paper's Section 2 simplification)."""
    return Kernel(
        "lf.deblock",
        base_cycles=120,
        datapaths=[H264_DATAPATHS["dbl.cond"], H264_DATAPATHS["dbl.filt"]],
    )


def deblocking_case_study(
    cost_model: TechnologyCostModel = DEFAULT_COST_MODEL,
) -> Tuple[Kernel, Dict[str, ISE]]:
    """Build the deblocking kernel and its three case-study ISEs."""
    kernel = case_study_kernel()
    cond, filt = kernel.datapaths

    def make(name: str, cond_fabric: FabricType, filt_fabric: FabricType) -> ISE:
        instances = order_for_reconfiguration(
            [
                DataPathInstance(cost_model.implement(cond, cond_fabric)),
                DataPathInstance(cost_model.implement(filt, filt_fabric)),
            ]
        )
        return ISE(kernel=kernel, name=f"{kernel.name}/{name}", instances=instances)

    ises = {
        "ISE-1": make("ise1-fg", FabricType.FG, FabricType.FG),
        "ISE-2": make("ise2-cg", FabricType.CG, FabricType.CG),
        "ISE-3": make("ise3-mg", FabricType.FG, FabricType.CG),
    }
    return kernel, ises


__all__ = ["case_study_kernel", "deblocking_case_study"]
