"""Pixel-grounded deblocking workload: execution counts from actual content.

The paper's run-time variation (c) is "input data properties (e.g., in
audio or video processing applications)".  The demand model of
:mod:`repro.workloads.h264.traces` abstracts that with an activity factor;
this module grounds it: it synthesises per-frame coding state (intra
flags, motion vectors, coded-residual flags, pixel values with blocking
artefacts) and runs the *actual H.264 deblocking decision* over every 4x4
edge -- boundary strength from the coding modes, then the alpha/beta
sample-gradient test -- to count how many edges the filter really
processes.  Those counts are the deblocking kernel's executions.

The decision logic follows the H.264 standard's structure (bS 4 at intra
edges, 2 at coded-residual edges, 1 at motion discontinuities, else 0;
filtering only where |p0-q0| < alpha(QP) and the side gradients are below
beta(QP)), with synthetic-but-plausible content statistics behind it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.util.rng import SeedLike, make_rng
from repro.util.validation import ValidationError, check_positive

#: Alpha/beta thresholds per quantisation parameter, shaped like the
#: standard's tables (monotone, roughly exponential in QP).
def alpha_threshold(qp: int) -> int:
    """The edge-strength threshold alpha(QP) of the filter decision."""
    return max(1, int(round(0.8 * 2 ** (qp / 6.0))))


def beta_threshold(qp: int) -> int:
    """The side-gradient threshold beta(QP) of the filter decision."""
    return max(1, int(round(0.5 * qp - 7)) if qp >= 16 else 1)


@dataclass(frozen=True)
class FrameContent:
    """Synthetic per-frame coding state of a ``mb_cols`` x ``mb_rows`` grid
    of macroblocks (each macroblock has a 4x4 grid of 4x4 blocks)."""

    intra: np.ndarray       #: bool, per macroblock
    coded: np.ndarray       #: bool, per 4x4 block (residual present)
    mv_x: np.ndarray        #: int, per 4x4 block
    mv_y: np.ndarray        #: int, per 4x4 block
    pixels: np.ndarray      #: uint8-ish ints, one sample row per block edge
    qp: int

    @property
    def blocks_shape(self) -> Tuple[int, int]:
        return self.coded.shape


def synthesize_frame(
    mb_cols: int = 11,
    mb_rows: int = 9,
    activity: float = 0.5,
    qp: int = 28,
    seed: SeedLike = 0,
) -> FrameContent:
    """Generate one frame's coding state for a given scene ``activity``.

    Busy scenes have more motion-vector variance, more coded residuals and
    stronger blocking artefacts; quiet scenes are mostly skipped blocks
    with smooth content.
    """
    check_positive("mb_cols", mb_cols)
    check_positive("mb_rows", mb_rows)
    if not 0.0 <= activity <= 1.5:
        raise ValidationError(f"activity must be in [0, 1.5], got {activity}")
    if not 0 <= qp <= 51:
        raise ValidationError(f"qp must be in [0, 51], got {qp}")
    rng = make_rng(seed)
    rows, cols = mb_rows * 4, mb_cols * 4

    intra = rng.random((mb_rows, mb_cols)) < (0.03 + 0.10 * max(0.0, 1.0 - activity))
    coded = rng.random((rows, cols)) < min(0.95, 0.15 + 0.55 * activity)
    mv_scale = 1.0 + 6.0 * activity
    mv_x = np.round(rng.normal(0.0, mv_scale, (rows, cols))).astype(int)
    mv_y = np.round(rng.normal(0.0, mv_scale, (rows, cols))).astype(int)

    # One representative sample per block.  Natural content is spatially
    # smooth (low-pass-filtered noise); quantisation adds a per-block DC
    # offset whose magnitude grows with QP -- the blocking artefacts the
    # filter exists to remove.
    from scipy.ndimage import gaussian_filter

    texture = gaussian_filter(rng.normal(0.0, 1.0, (rows, cols)), sigma=2.5)
    texture = texture / max(1e-9, np.abs(texture).max())
    base = 128 + 70 * texture
    dc_offset = rng.normal(0.0, 0.25 * qp * (0.8 + 0.2 * activity), (rows, cols))
    dc_offset[~coded] *= 0.2  # skipped blocks reconstruct cleanly
    pixels = np.clip(np.round(base + dc_offset).astype(int), 0, 255)

    return FrameContent(
        intra=intra, coded=coded, mv_x=mv_x, mv_y=mv_y, pixels=pixels, qp=qp
    )


def boundary_strength(content: FrameContent) -> Dict[str, np.ndarray]:
    """Boundary strength of every internal vertical and horizontal edge.

    bS = 4 if either side is intra-coded, 2 if either side has coded
    residual, 1 if the motion vectors differ by >= 1 sample (4 quarter-pels),
    else 0 (standard Section 8.7 structure)."""
    rows, cols = content.blocks_shape
    intra_blocks = np.kron(content.intra, np.ones((4, 4), dtype=bool))

    def edge_bs(a_slice, b_slice) -> np.ndarray:
        intra_edge = intra_blocks[a_slice] | intra_blocks[b_slice]
        coded_edge = content.coded[a_slice] | content.coded[b_slice]
        mv_edge = (
            (np.abs(content.mv_x[a_slice] - content.mv_x[b_slice]) >= 4)
            | (np.abs(content.mv_y[a_slice] - content.mv_y[b_slice]) >= 4)
        )
        bs = np.zeros(intra_edge.shape, dtype=int)
        bs[mv_edge] = 1
        bs[coded_edge] = 2
        bs[intra_edge] = 4
        return bs

    vertical = edge_bs((slice(None), slice(0, cols - 1)), (slice(None), slice(1, cols)))
    horizontal = edge_bs((slice(0, rows - 1), slice(None)), (slice(1, rows), slice(None)))
    return {"vertical": vertical, "horizontal": horizontal}


def filtered_edge_count(content: FrameContent) -> int:
    """Edges the deblocking filter actually processes in this frame.

    An edge filters when bS > 0 *and* the sample test passes:
    |p0 - q0| < alpha(QP) and the side gradients are below beta(QP)."""
    alpha = alpha_threshold(content.qp)
    beta = beta_threshold(content.qp)
    bs = boundary_strength(content)
    pixels = content.pixels
    rows, cols = pixels.shape

    count = 0
    for orientation, strengths in bs.items():
        if orientation == "vertical":
            p0 = pixels[:, 0 : cols - 1]
            q0 = pixels[:, 1:cols]
            p1 = np.roll(p0, 1, axis=1)
            q1 = np.roll(q0, -1, axis=1)
        else:
            p0 = pixels[0 : rows - 1, :]
            q0 = pixels[1:rows, :]
            p1 = np.roll(p0, 1, axis=0)
            q1 = np.roll(q0, -1, axis=0)
        sample_test = (
            (np.abs(p0.astype(int) - q0.astype(int)) < alpha)
            & (np.abs(p1.astype(int) - p0.astype(int)) < beta)
            & (np.abs(q1.astype(int) - q0.astype(int)) < beta)
        )
        count += int(((strengths > 0) & sample_test).sum())
    return count


def pixel_grounded_deblock_counts(
    frames: int,
    activities: List[float] = None,
    qp: int = 28,
    mb_cols: int = 11,
    mb_rows: int = 9,
    seed: SeedLike = 0,
) -> List[int]:
    """Per-frame deblocking-filter executions derived from synthetic content.

    When ``activities`` is omitted, the standard scene-activity trace of
    :func:`repro.workloads.h264.traces.frame_activity` drives the content.
    """
    check_positive("frames", frames)
    if activities is None:
        from repro.workloads.h264.traces import frame_activity

        activities = frame_activity(frames, seed=seed)
    if len(activities) != frames:
        raise ValidationError(
            f"{frames} frames but {len(activities)} activity values"
        )
    rng = make_rng(seed)
    counts = []
    for activity in activities:
        content = synthesize_frame(
            mb_cols=mb_cols,
            mb_rows=mb_rows,
            activity=float(min(1.5, max(0.0, activity))),
            qp=qp,
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        counts.append(filtered_edge_count(content))
    return counts


__all__ = [
    "FrameContent",
    "alpha_threshold",
    "beta_threshold",
    "synthesize_frame",
    "boundary_strength",
    "filtered_edge_count",
    "pixel_grounded_deblock_counts",
]
