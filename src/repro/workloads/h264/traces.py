"""Frame-by-frame execution-count traces of the encoder.

The number of kernel executions per frame varies with the video content
(Fig. 2 of the paper: the deblocking filter's executions change so much
between frames that the performance-wise best ISE changes from iteration to
iteration).  We generate that variation with a seeded scene-activity
process: scenes of geometric length draw a mean motion activity, and the
per-frame activity follows an AR(1) pull toward the scene mean.  Motion
kernels scale with activity, intra prediction scales against it, and the
deblocking filter swings hardest (strong blocking artefacts in high-motion
scenes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.sim.program import BlockIteration, KernelIteration
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class _KernelDemand:
    """How a kernel's per-frame executions derive from scene activity."""

    block: str
    base: int            #: executions at activity 1.0
    offset: float        #: activity-independent floor factor
    activity_gain: float #: slope w.r.t. activity (negative = intra-like)
    gap: int             #: non-kernel cycles before each execution
    exponent: float = 1.0  #: curvature: >1 makes the kernel swing harder

    def executions(self, activity: float) -> int:
        factor = max(
            0.02, self.offset + self.activity_gain * activity**self.exponent
        )
        return max(1, int(round(self.base * factor)))


#: Per-kernel demand model (block, base count, floor, activity slope, gap).
H264_DEMANDS: Dict[str, _KernelDemand] = {
    "me.sad": _KernelDemand("ME", 900, 0.30, 1.40, 30),
    "me.satd": _KernelDemand("ME", 300, 0.40, 1.20, 40),
    "ee.dct4x4": _KernelDemand("EE", 350, 0.70, 0.60, 35),
    "ee.ht": _KernelDemand("EE", 120, 0.80, 0.40, 45),
    "ee.iquant": _KernelDemand("EE", 350, 0.70, 0.60, 35),
    "ee.ipred": _KernelDemand("EE", 250, 1.30, -0.80, 40),
    "ee.mc_hz": _KernelDemand("EE", 400, 0.30, 1.40, 30),
    "ee.cavlc": _KernelDemand("EE", 300, 0.60, 0.80, 35),
    "ee.idct": _KernelDemand("EE", 350, 0.70, 0.60, 35),
    "lf.deblock_luma": _KernelDemand("LF", 2600, 0.02, 2.05, 25, exponent=1.6),
    "lf.deblock_chroma": _KernelDemand("LF", 1300, 0.02, 2.05, 25, exponent=1.6),
}


def frame_activity(
    frames: int,
    seed: SeedLike = 0,
    mean_scene_length: float = 5.0,
) -> List[float]:
    """Scene-activity value per frame in [0.05, 1.2].

    Scene cuts arrive geometrically (mean ``mean_scene_length`` frames);
    each scene draws a target activity, and frames pull toward it with AR(1)
    dynamics plus small noise -- producing the piecewise regimes visible in
    Fig. 2.
    """
    check_positive("frames", frames)
    check_positive("mean_scene_length", mean_scene_length)
    rng = make_rng(seed)
    activities: List[float] = []
    scene_mean = float(rng.uniform(0.08, 1.1))
    activity = scene_mean
    for _ in range(frames):
        if rng.random() < 1.0 / mean_scene_length:
            scene_mean = float(rng.uniform(0.08, 1.1))
        activity += 0.6 * (scene_mean - activity) + float(rng.normal(0.0, 0.06))
        activity = float(np.clip(activity, 0.05, 1.2))
        activities.append(activity)
    return activities


def deblock_executions_per_frame(frames: int = 16, seed: SeedLike = 0) -> List[int]:
    """The Fig. 2 series: deblocking-filter executions per encoded frame."""
    demand = H264_DEMANDS["lf.deblock_luma"]
    return [demand.executions(a) for a in frame_activity(frames, seed)]


def h264_iterations(
    frames: int,
    seed: SeedLike = 0,
    scale: float = 1.0,
) -> List[BlockIteration]:
    """The dynamic block-iteration sequence of an encoding run.

    Per frame the encoder runs ME, then EE, then LF.  ``scale`` uniformly
    scales all execution counts (useful for fast tests)."""
    check_positive("scale", scale)
    activities = frame_activity(frames, seed)
    iterations: List[BlockIteration] = []
    for activity in activities:
        per_block: Dict[str, List[KernelIteration]] = {"ME": [], "EE": [], "LF": []}
        for kernel_name, demand in H264_DEMANDS.items():
            executions = max(1, int(round(demand.executions(activity) * scale)))
            per_block[demand.block].append(
                KernelIteration(kernel=kernel_name, executions=executions, gap=demand.gap)
            )
        for block_name in ("ME", "EE", "LF"):
            iterations.append(BlockIteration(block_name, per_block[block_name]))
    return iterations


__all__ = [
    "H264_DEMANDS",
    "frame_activity",
    "deblock_executions_per_frame",
    "h264_iterations",
]
