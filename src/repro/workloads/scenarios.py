"""Named workload scenarios for ablations and stress tests.

Each scenario is a preset of the synthetic generator shaped to stress one
aspect of the run-time system: stable streaming (selection should converge
and stay put), scene-cut-heavy (the MPU must keep re-learning), bursty
(feast-and-famine counts -- amortisation decisions flip constantly),
control-heavy (FG contention), and compute-heavy (CG contention).
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.program import Application, BlockIteration, KernelIteration
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import ReproError
from repro.workloads.synthetic import SyntheticWorkloadConfig, synthetic_application


def _with_iteration_counts(
    application: Application, counts: List[int], gap: int = 40
) -> Application:
    """Rebuild ``application`` with per-iteration execution counts taken from
    ``counts`` (cycled), keeping blocks and kernels."""
    iterations = []
    index = 0
    for iteration in application.iterations:
        new_kernels = [
            KernelIteration(kit.kernel, max(1, counts[index % len(counts)]), gap)
            for kit in iteration.kernels
        ]
        iterations.append(BlockIteration(iteration.block, new_kernels))
        index += 1
    return Application(application.name, application.blocks, iterations)


def streaming_stable(seed: SeedLike = 0, iterations: int = 10) -> Application:
    """Constant per-iteration counts: the convergence case."""
    config = SyntheticWorkloadConfig(
        n_blocks=2,
        kernels_per_block=(2, 3),
        iterations=iterations,
        executions_range=(150, 151),
        bit_dominant_probability=0.5,
    )
    return synthetic_application(config, seed=seed)


def scene_cut_heavy(seed: SeedLike = 0, iterations: int = 12) -> Application:
    """Counts jump an order of magnitude every iteration: the MPU's
    error-backpropagation is always one step behind."""
    base = synthetic_application(
        SyntheticWorkloadConfig(
            n_blocks=2, kernels_per_block=(2, 3), iterations=iterations,
            executions_range=(50, 60),
        ),
        seed=seed,
    )
    rng = make_rng(seed)
    counts = [int(rng.choice([30, 900])) for _ in range(len(base.iterations))]
    return _with_iteration_counts(base, counts)


def bursty(seed: SeedLike = 0, iterations: int = 12) -> Application:
    """Idle-then-flood traffic (the packet-processing pattern)."""
    base = synthetic_application(
        SyntheticWorkloadConfig(
            n_blocks=1, kernels_per_block=(2, 2), iterations=iterations,
            executions_range=(50, 60),
        ),
        seed=seed,
    )
    counts = [20 if i % 2 == 0 else 1200 for i in range(len(base.iterations))]
    return _with_iteration_counts(base, counts)


def control_heavy(seed: SeedLike = 0, iterations: int = 8) -> Application:
    """Almost every data path is bit-dominant: PRCs are the scarce resource."""
    config = SyntheticWorkloadConfig(
        n_blocks=2,
        kernels_per_block=(2, 4),
        iterations=iterations,
        executions_range=(100, 400),
        bit_dominant_probability=0.95,
    )
    return synthetic_application(config, seed=seed)


def compute_heavy(seed: SeedLike = 0, iterations: int = 8) -> Application:
    """Almost every data path is word/multiply-dominant: CG slots dominate."""
    config = SyntheticWorkloadConfig(
        n_blocks=2,
        kernels_per_block=(2, 4),
        iterations=iterations,
        executions_range=(100, 400),
        bit_dominant_probability=0.05,
    )
    return synthetic_application(config, seed=seed)


SCENARIOS: Dict[str, callable] = {
    "streaming-stable": streaming_stable,
    "scene-cut-heavy": scene_cut_heavy,
    "bursty": bursty,
    "control-heavy": control_heavy,
    "compute-heavy": compute_heavy,
}


def scenario(name: str, seed: SeedLike = 0) -> Application:
    """Build a named scenario (see :data:`SCENARIOS` for the catalogue)."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ReproError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
    return factory(seed=seed)


__all__ = [
    "SCENARIOS",
    "scenario",
    "streaming_stable",
    "scene_cut_heavy",
    "bursty",
    "control_heavy",
    "compute_heavy",
]
