"""Workloads: the H.264 encoder of the paper's evaluation plus synthetic
application generators for property tests and ablations."""

from repro.workloads.h264 import (
    h264_application,
    h264_library,
    h264_blocks,
    h264_kernels,
    deblocking_application,
    deblocking_library,
    deblocking_case_study,
    frame_activity,
    deblock_executions_per_frame,
)
from repro.workloads.synthetic import SyntheticWorkloadConfig, synthetic_application
from repro.workloads.scenarios import SCENARIOS, scenario
from repro.workloads.jpeg import (
    jpeg_application,
    jpeg_library,
    jpeg_kernels,
    jpeg_blocks,
    image_complexity,
)

__all__ = [
    "h264_application",
    "h264_library",
    "h264_blocks",
    "h264_kernels",
    "deblocking_application",
    "deblocking_library",
    "deblocking_case_study",
    "frame_activity",
    "deblock_executions_per_frame",
    "SyntheticWorkloadConfig",
    "synthetic_application",
    "jpeg_application",
    "jpeg_library",
    "jpeg_kernels",
    "jpeg_blocks",
    "image_complexity",
    "SCENARIOS",
    "scenario",
]
